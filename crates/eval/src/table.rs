//! Plain-text table rendering for experiment reports.
//!
//! The benches print their results with this so the output can be pasted
//! straight into `EXPERIMENTS.md` next to the paper's tables.

use std::fmt;

/// A simple column-aligned table with a header row.
///
/// ```
/// use fuiov_eval::table::Table;
/// let mut t = Table::new(&["method", "accuracy"]);
/// t.row(&["ours".to_string(), "0.859".to_string()]);
/// let text = t.to_string();
/// assert!(text.contains("ours"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "Table: need at least one column");
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table: cell count mismatch"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable values.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Column-aligned plain text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                write!(f, "{cell:<w$}", w = w)?;
                if i + 1 < cols {
                    write!(f, "  ")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an `f32` with 3 decimal places (the paper's accuracy format).
pub fn fmt3(v: f32) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(v: f32) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new(&["method", "acc"]);
        t.row(&["retraining".into(), "0.873".into()]);
        t.row(&["ours".into(), "0.859".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].contains("retraining"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n| 1 | 2 |\n"));
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new(&["x", "y"]);
        t.row_display(&[&1.5f32, &"hi"]);
        assert!(t.to_string().contains("1.5"));
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.8594), "0.859");
        assert_eq!(fmt_pct(0.561), "56.1%");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn mismatched_row_panics() {
        Table::new(&["only"]).row(&["a".into(), "b".into()]);
    }
}
