//! Confusion matrices and derived per-class statistics.
//!
//! Used by the attack analyses: a label-flip 7→1 attack shows up as mass
//! moving from cell (7,7) to cell (7,1), which the ASR metric summarises
//! but the full matrix localises.

use fuiov_data::Dataset;
use fuiov_nn::Sequential;

/// A `classes × classes` confusion matrix; rows are true labels, columns
/// are predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// An all-zero matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "ConfusionMatrix: classes must be positive");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Evaluates a model over a dataset.
    pub fn evaluate(model: &mut Sequential, data: &Dataset) -> Self {
        let mut cm = ConfusionMatrix::new(data.num_classes());
        if data.is_empty() {
            return cm;
        }
        let all: Vec<usize> = (0..data.len()).collect();
        for chunk in all.chunks(256) {
            let (x, y) = data.gather(chunk);
            let preds = model.predict(&x);
            for (p, t) in preds.iter().zip(&y) {
                cm.record(*t, *p);
            }
        }
        cm
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(
            truth < self.classes && prediction < self.classes,
            "record: label out of range"
        );
        self.counts[truth * self.classes + prediction] += 1;
    }

    /// Count of (truth, prediction) pairs.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn count(&self, truth: usize, prediction: usize) -> usize {
        assert!(
            truth < self.classes && prediction < self.classes,
            "count: label out of range"
        );
        self.counts[truth * self.classes + prediction]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy, `0.0` when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f32 / total as f32
    }

    /// Recall of one class (`None` if the class has no samples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Precision of one class (`None` if the class is never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: usize = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col as f32)
        }
    }

    /// Fraction of class `from` samples predicted as class `to` — the raw
    /// quantity behind the label-flip attack success rate.
    pub fn leakage(&self, from: usize, to: usize) -> Option<f32> {
        let row: usize = (0..self.classes).map(|p| self.count(from, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(from, to) as f32 / row as f32)
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "    ")?;
        for p in 0..self.classes {
            write!(f, "{p:>5}")?;
        }
        writeln!(f)?;
        for t in 0..self.classes {
            write!(f, "{t:>3}:")?;
            for p in 0..self.classes {
                write!(f, "{:>5}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // class 0: 8 correct, 2 → class 1
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        // class 1: all correct
        for _ in 0..5 {
            cm.record(1, 1);
        }
        cm
    }

    #[test]
    fn counts_and_totals() {
        let cm = sample();
        assert_eq!(cm.count(0, 1), 2);
        assert_eq!(cm.total(), 15);
        assert!((cm.accuracy() - 13.0 / 15.0).abs() < 1e-6);
    }

    #[test]
    fn recall_precision_leakage() {
        let cm = sample();
        assert!((cm.recall(0).unwrap() - 0.8).abs() < 1e-6);
        assert_eq!(cm.recall(2), None);
        assert!((cm.precision(1).unwrap() - 5.0 / 7.0).abs() < 1e-6);
        assert_eq!(cm.precision(2), None);
        assert!((cm.leakage(0, 1).unwrap() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn evaluate_model_on_dataset() {
        use fuiov_data::DigitStyle;
        use fuiov_nn::ModelSpec;
        let data = Dataset::digits(40, &DigitStyle::small(), 6);
        let mut m = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        }
        .build(1);
        let cm = ConfusionMatrix::evaluate(&mut m, &data);
        assert_eq!(cm.total(), 40);
        assert_eq!(cm.classes(), 10);
        // Accuracy agrees with the scalar metric.
        let acc = crate::metrics::test_accuracy(&mut m, &data);
        assert!((cm.accuracy() - acc).abs() < 1e-6);
    }

    #[test]
    fn display_renders_rows() {
        let s = sample().to_string();
        assert!(s.contains("0:"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn record_bounds_checked() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
