//! Client-heterogeneity diagnostics over the stored sign history.
//!
//! The recovery signal in the paper's scheme is the FedAvg of per-client
//! gradient *directions*; when clients disagree on many coordinates
//! (non-IID data), that average carries less information. These metrics
//! quantify the effect directly from a [`HistoryStore`] — no extra
//! training needed — and explain the `exp_noniid` results.

use fuiov_storage::{HistoryStore, Round};

/// Mean pairwise sign-agreement between clients in one round: the
/// fraction of coordinates on which two clients report the same direction,
/// averaged over all client pairs. `None` if fewer than two clients
/// participated.
pub fn round_sign_agreement(history: &HistoryStore, round: Round) -> Option<f32> {
    let clients = history.clients_in_round(round);
    if clients.len() < 2 {
        return None;
    }
    let signs: Vec<Vec<i8>> = clients
        .iter()
        .filter_map(|&c| history.direction(round, c).map(|d| d.to_signs()))
        .collect();
    if signs.len() < 2 {
        return None;
    }
    let dim = signs[0].len();
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..signs.len() {
        for j in (i + 1)..signs.len() {
            let agree = fuiov_tensor::vector::sign_agreement(&signs[i], &signs[j]);
            total += agree as f64 / dim as f64;
            pairs += 1;
        }
    }
    Some((total / pairs as f64) as f32)
}

/// Per-round sign agreement across the whole history, skipping rounds
/// with fewer than two participants.
pub fn sign_agreement_curve(history: &HistoryStore) -> Vec<(Round, f32)> {
    history
        .rounds()
        .into_iter()
        .filter_map(|r| round_sign_agreement(history, r).map(|a| (r, a)))
        .collect()
}

/// Fraction of coordinates on which the *weighted majority* of clients
/// agree in a round — the effective signal density of the sign-FedAvg.
/// `None` if no clients participated.
pub fn majority_coherence(history: &HistoryStore, round: Round) -> Option<f32> {
    let clients = history.clients_in_round(round);
    if clients.is_empty() {
        return None;
    }
    let mut acc: Option<Vec<f64>> = None;
    let mut wsum = 0.0f64;
    for &c in &clients {
        let d = history.direction(round, c)?;
        let w = f64::from(history.weight(c));
        wsum += w;
        let signs = d.to_signs();
        let acc = acc.get_or_insert_with(|| vec![0.0; signs.len()]);
        for (a, s) in acc.iter_mut().zip(signs) {
            *a += w * f64::from(s);
        }
    }
    let acc = acc?;
    if wsum == 0.0 {
        return None;
    }
    // A coordinate is "coherent" when the weighted mean sign is decisive
    // (|mean| > ½ — more than three quarters of the weight pulls one way).
    let coherent = acc.iter().filter(|&&a| (a / wsum).abs() > 0.5).count();
    Some(coherent as f32 / acc.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_storage::HistoryStore;

    fn store(signs: &[&[f32]]) -> HistoryStore {
        let mut h = HistoryStore::new(0.0);
        h.record_model(0, vec![0.0; signs[0].len()]);
        for (c, g) in signs.iter().enumerate() {
            h.record_join(c, 0);
            h.record_gradient(0, c, g);
        }
        h
    }

    #[test]
    fn identical_clients_agree_fully() {
        let h = store(&[&[1.0, -1.0, 1.0], &[2.0, -0.5, 3.0]]);
        assert_eq!(round_sign_agreement(&h, 0), Some(1.0));
        assert_eq!(majority_coherence(&h, 0), Some(1.0));
    }

    #[test]
    fn opposite_clients_agree_never() {
        let h = store(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        assert_eq!(round_sign_agreement(&h, 0), Some(0.0));
        assert_eq!(majority_coherence(&h, 0), Some(0.0));
    }

    #[test]
    fn partial_agreement() {
        let h = store(&[&[1.0, 1.0, 1.0, -1.0], &[1.0, 1.0, -1.0, 1.0]]);
        assert_eq!(round_sign_agreement(&h, 0), Some(0.5));
        // Two of four coordinates have a decisive majority.
        assert_eq!(majority_coherence(&h, 0), Some(0.5));
    }

    #[test]
    fn single_client_round_is_none_for_agreement() {
        let h = store(&[&[1.0]]);
        assert_eq!(round_sign_agreement(&h, 0), None);
        // Majority coherence is defined for one client.
        assert_eq!(majority_coherence(&h, 0), Some(1.0));
    }

    #[test]
    fn curve_covers_rounds_with_pairs() {
        let mut h = store(&[&[1.0, -1.0], &[1.0, 1.0]]);
        h.record_model(1, vec![0.0, 0.0]);
        h.record_gradient(1, 0, &[1.0, 1.0]);
        // Round 1 has a single client → skipped.
        let curve = sign_agreement_curve(&h);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].0, 0);
    }

    #[test]
    fn weights_shift_the_majority() {
        let mut h = store(&[&[1.0], &[-1.0], &[-1.0]]);
        // Equal weights: mean sign = −1/3, not decisive.
        assert_eq!(majority_coherence(&h, 0), Some(0.0));
        // Client 0 dominates: mean ≈ +0.8, decisive.
        h.set_weight(0, 18.0);
        assert_eq!(majority_coherence(&h, 0), Some(1.0));
    }
}
