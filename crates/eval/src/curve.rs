//! Accuracy-over-rounds curve recording.
//!
//! The trace experiment and the recovery callbacks both produce
//! `(round, value)` series; this type collects them with summary helpers
//! (useful for the "accuracy continuously diminishes" trigger discussion
//! in §IV-B).

use fuiov_storage::Round;

/// A `(round, value)` series recorded during training or recovery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Curve {
    points: Vec<(Round, f32)>,
}

impl Curve {
    /// An empty curve.
    pub fn new() -> Self {
        Curve { points: Vec::new() }
    }

    /// Appends a point. Rounds should be non-decreasing; this is not
    /// enforced but summary methods assume it.
    pub fn push(&mut self, round: Round, value: f32) {
        self.points.push((round, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(Round, f32)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final value, if any.
    pub fn last_value(&self) -> Option<f32> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Maximum value, if any.
    pub fn max_value(&self) -> Option<f32> {
        self.points.iter().map(|&(_, v)| v).reduce(f32::max)
    }

    /// Length of the longest strictly-decreasing suffix — the §IV-B
    /// "accuracy continuously diminishes" signal: when this exceeds a
    /// patience threshold, the server should refresh its vector pairs.
    pub fn decreasing_suffix(&self) -> usize {
        let vals: Vec<f32> = self.points.iter().map(|&(_, v)| v).collect();
        let mut run = 0;
        for w in vals.windows(2).rev() {
            if w[1] < w[0] {
                run += 1;
            } else {
                break;
            }
        }
        run
    }

    /// Simple moving average with the given window (returns a new curve
    /// aligned to the input's rounds; shorter prefixes average what's
    /// available).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn smoothed(&self, window: usize) -> Curve {
        assert!(window > 0, "smoothed: window must be positive");
        let mut out = Curve::new();
        for i in 0..self.points.len() {
            let lo = i.saturating_sub(window - 1);
            let slice: Vec<f32> = self.points[lo..=i].iter().map(|&(_, v)| v).collect();
            out.push(self.points[i].0, fuiov_tensor::stats::mean(&slice));
        }
        out
    }
}

impl FromIterator<(Round, f32)> for Curve {
    fn from_iter<I: IntoIterator<Item = (Round, f32)>>(iter: I) -> Self {
        Curve {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(vals: &[f32]) -> Curve {
        vals.iter().copied().enumerate().collect()
    }

    #[test]
    fn basic_accessors() {
        let c = curve(&[0.1, 0.5, 0.4]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.last_value(), Some(0.4));
        assert_eq!(c.max_value(), Some(0.5));
        assert!(!c.is_empty());
        assert!(Curve::new().is_empty());
    }

    #[test]
    fn decreasing_suffix_counts_drops() {
        assert_eq!(curve(&[0.1, 0.2, 0.3]).decreasing_suffix(), 0);
        assert_eq!(curve(&[0.3, 0.2, 0.1]).decreasing_suffix(), 2);
        assert_eq!(curve(&[0.1, 0.5, 0.4, 0.3]).decreasing_suffix(), 2);
        assert_eq!(Curve::new().decreasing_suffix(), 0);
    }

    #[test]
    fn smoothing_averages_windows() {
        let c = curve(&[0.0, 1.0, 2.0, 3.0]);
        let s = c.smoothed(2);
        let vals: Vec<f32> = s.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0.0, 0.5, 1.5, 2.5]);
    }
}
