//! Evaluation metrics and report formatting for the FUIOV experiments.
//!
//! - [`metrics`]: test accuracy, loss, per-class accuracy, and the
//!   model-distance criterion of §III-B.
//! - [`table`]: column-aligned / markdown tables the experiment binaries
//!   print, matching the paper's Table I format.

pub mod confusion;
pub mod curve;
pub mod heterogeneity;
pub mod metrics;
pub mod table;

pub use confusion::ConfusionMatrix;
pub use curve::Curve;
pub use heterogeneity::{majority_coherence, round_sign_agreement, sign_agreement_curve};
pub use metrics::{model_distance, per_class_accuracy, test_accuracy, test_loss};
pub use table::Table;
