//! Property-based tests for aggregation rules and schedules.

use fuiov_fl::aggregate::aggregate;
use fuiov_fl::schedule::LrSchedule;
use fuiov_fl::AggregationRule;
use proptest::prelude::*;

fn grads(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, dim), n)
}

proptest! {
    /// Every aggregation rule's output lies coordinate-wise within the
    /// min/max envelope of the inputs (for SignSgd, within ±λ·n).
    #[test]
    fn aggregates_stay_in_envelope(gs in grads(5, 8)) {
        let weights = vec![1.0f32; gs.len()];
        for rule in [
            AggregationRule::FedAvg,
            AggregationRule::CoordinateMedian,
            AggregationRule::TrimmedMean { trim: 1 },
        ] {
            let out = aggregate(rule, &gs, &weights);
            for j in 0..out.len() {
                let lo = gs.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
                let hi = gs.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    out[j] >= lo - 1e-4 && out[j] <= hi + 1e-4,
                    "{rule:?} escaped envelope at {j}: {} not in [{lo}, {hi}]", out[j]
                );
            }
        }
        let out = aggregate(AggregationRule::SignSgd { lambda: 0.5 }, &gs, &weights);
        prop_assert!(out.iter().all(|v| v.abs() <= 0.5 * gs.len() as f32 + 1e-6));
    }

    /// FedAvg is permutation-invariant (clients in any order).
    #[test]
    fn fedavg_is_permutation_invariant(gs in grads(4, 6)) {
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        let a = aggregate(AggregationRule::FedAvg, &gs, &weights);
        let perm: Vec<Vec<f32>> = vec![gs[2].clone(), gs[0].clone(), gs[3].clone(), gs[1].clone()];
        let perm_w = [weights[2], weights[0], weights[3], weights[1]];
        let b = aggregate(AggregationRule::FedAvg, &perm, &perm_w);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The median ignores a single arbitrarily-corrupted client.
    #[test]
    fn median_bounds_single_outlier(
        gs in grads(4, 6),
        outlier in prop::collection::vec(-1e6f32..1e6, 6),
    ) {
        let mut with_outlier = gs.clone();
        with_outlier.push(outlier);
        let weights = vec![1.0f32; with_outlier.len()];
        let out = aggregate(AggregationRule::CoordinateMedian, &with_outlier, &weights);
        for j in 0..out.len() {
            let lo = gs.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = gs.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(
                out[j] >= lo - 1e-4 && out[j] <= hi + 1e-4,
                "outlier leaked through the median at {j}"
            );
        }
    }

    /// Schedules never produce negative or exploding rates.
    #[test]
    fn schedules_are_sane(round in 0usize..10_000, base in 0.0001f32..10.0) {
        for s in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every: 100, factor: 0.9 },
            LrSchedule::Cosine { total: 1000, floor: 0.05 },
        ] {
            let lr = s.lr_at(round, base);
            prop_assert!(lr.is_finite());
            prop_assert!(lr >= 0.0);
            prop_assert!(lr <= base * 1.0001, "{s:?} exceeded base at round {round}");
        }
    }

    /// Dataset-size weighting: duplicating a client is the same as
    /// doubling its weight.
    #[test]
    fn duplicating_equals_reweighting(gs in grads(3, 5)) {
        let mut dup = gs.clone();
        dup.push(gs[0].clone());
        let a = aggregate(AggregationRule::FedAvg, &dup, &[1.0, 1.0, 1.0, 1.0]);
        let b = aggregate(AggregationRule::FedAvg, &gs, &[2.0, 1.0, 1.0]);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
