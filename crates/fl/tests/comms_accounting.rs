//! Hand-computed byte-accounting checks for the comms report.
//!
//! The invariants the fault harness and the paper's overhead tables rely
//! on: per round, `down_bytes == participants × 4·d`, `up_bytes_full ==
//! participants × 4·d`, and `up_bytes_sign == participants × ⌈2·d/8⌉` (2
//! bits per element, packed 4 per byte).

use fuiov_fl::comms::CommsReport;
use fuiov_fl::server::RoundSummary;

fn summary(round: usize, participants: &[usize]) -> RoundSummary {
    RoundSummary {
        round,
        participants: participants.to_vec(),
        update_norm: 1.0,
    }
}

#[test]
fn sign_upload_bytes_use_ceiling_division() {
    // d = 7: 2·7 = 14 bits → ⌈14/8⌉ = 2 bytes per vehicle.
    let r = CommsReport::from_summaries(7, &[summary(0, &[0, 1, 2])]);
    assert_eq!(r.rounds()[0].up_bytes_sign, 3 * 2);
    // d = 8: exactly 2 bytes.
    let r = CommsReport::from_summaries(8, &[summary(0, &[0])]);
    assert_eq!(r.rounds()[0].up_bytes_sign, 2);
    // d = 9: one ragged element forces a third byte.
    let r = CommsReport::from_summaries(9, &[summary(0, &[0])]);
    assert_eq!(r.rounds()[0].up_bytes_sign, 3);
    // d = 1: still a whole byte on the wire.
    let r = CommsReport::from_summaries(1, &[summary(0, &[0, 1])]);
    assert_eq!(r.rounds()[0].up_bytes_sign, 2);
}

#[test]
fn per_round_invariants_hold_for_every_dimension() {
    for d in 1usize..40 {
        for n in 0usize..5 {
            let participants: Vec<usize> = (0..n).collect();
            let r = CommsReport::from_summaries(d, &[summary(0, &participants)]);
            let rc = r.rounds()[0];
            assert_eq!(rc.participants, n);
            assert_eq!(rc.down_bytes, n * 4 * d, "d={d} n={n}");
            assert_eq!(rc.up_bytes_full, n * 4 * d, "d={d} n={n}");
            assert_eq!(rc.up_bytes_sign, n * (2 * d).div_ceil(8), "d={d} n={n}");
        }
    }
}

#[test]
fn hand_computed_multi_round_totals() {
    // d = 10 → model 40 B, signs ⌈20/8⌉ = 3 B.
    // Round 0: 3 vehicles, round 1: 1 vehicle, round 2: nobody.
    let r = CommsReport::from_summaries(
        10,
        &[summary(0, &[0, 1, 2]), summary(1, &[2]), summary(2, &[])],
    );
    assert_eq!(r.total_participations(), 4);
    assert_eq!(r.total_down(), 4 * 40);
    assert_eq!(r.total_up_full(), 4 * 40);
    assert_eq!(r.total_up_sign(), 4 * 3);
    // Savings: 1 − 12/160 = 0.925.
    assert!((r.uplink_savings() - 0.925).abs() < 1e-12);
}

#[test]
fn zero_participant_rounds_cost_nothing() {
    let r = CommsReport::from_summaries(100, &[summary(0, &[]), summary(1, &[]), summary(2, &[7])]);
    assert_eq!(r.rounds()[0].down_bytes, 0);
    assert_eq!(r.rounds()[0].up_bytes_full, 0);
    assert_eq!(r.rounds()[0].up_bytes_sign, 0);
    assert_eq!(r.rounds()[1].down_bytes, 0);
    // Only the populated round contributes to the totals.
    assert_eq!(r.total_down(), 400);
    assert_eq!(r.total_up_sign(), 25);
    // An all-empty run has zero savings by convention (no division by 0).
    let empty = CommsReport::from_summaries(100, &[summary(0, &[]), summary(1, &[])]);
    assert_eq!(empty.total_up_full(), 0);
    assert_eq!(empty.uplink_savings(), 0.0);
}

#[test]
fn accounting_matches_recorded_history_bytes() {
    // The wire accounting and the storage accounting use the same packing:
    // a round's sign upload bytes equal the history's direction bytes for
    // that round's participants.
    use fuiov_storage::HistoryStore;
    let d = 13; // ragged: ⌈26/8⌉ = 4 bytes
    let mut h = HistoryStore::new(1e-6);
    h.record_model(0, vec![0.0; d]);
    let grad: Vec<f32> = (0..d)
        .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
        .collect();
    h.record_join(0, 0);
    h.record_join(1, 0);
    h.record_gradient(0, 0, &grad);
    h.record_gradient(0, 1, &grad);
    let r = CommsReport::from_summaries(d, &[summary(0, &[0, 1])]);
    assert_eq!(r.rounds()[0].up_bytes_sign, h.direction_bytes());
}
