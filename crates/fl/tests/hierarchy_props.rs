//! Property oracles for hierarchical aggregation.
//!
//! The load-bearing contract: a fixed-shape RSU/edge tree reduction is
//! **bitwise identical** to flat [`aggregate_refs`] FedAvg for *every*
//! participant count and fan-out — ragged last nodes, single-child
//! right spines, degenerate one-leaf trees, the lot. The golden traces
//! never need re-blessing when the tree is switched on.
//!
//! The sampling knob gets the same treatment: `FUIOV_SAMPLE_FRAC = 1.0`
//! (and every unparsable value) must take the exact no-filter code path,
//! so an unset knob reproduces the unsampled trace bit for bit. Tests
//! exercise the pure parse/apply functions and server builders directly
//! — never the process environment.

use fuiov_data::{Dataset, DigitStyle};
use fuiov_fl::aggregate::aggregate_refs;
use fuiov_fl::hierarchy::{
    aggregate_tree, apply_sampling, parse_fanout, parse_sample_frac, AggregationTree,
};
use fuiov_fl::mobility::ChurnSchedule;
use fuiov_fl::{AggregationRule, Client, FlConfig, HonestClient, Server};
use fuiov_nn::ModelSpec;
use proptest::prelude::*;

fn grads(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * 31 + j * 7) % 17) as f32 * 0.3 - 2.4)
                .collect()
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Arbitrary participant counts, fan-outs, gradients and FedAvg
    /// weights: the tree reduction must reproduce flat aggregation
    /// bit for bit.
    #[test]
    fn tree_is_bitwise_flat_for_arbitrary_shapes(
        n in 1usize..70,
        fanout in 2usize..9,
        dim in 1usize..24,
        wsel in prop::collection::vec(0u8..16, 70),
    ) {
        let gs = grads(n, dim);
        let refs: Vec<&[f32]> = gs.iter().map(Vec::as_slice).collect();
        let weights: Vec<f32> = (0..n).map(|i| 0.25 + 0.25 * wsel[i] as f32).collect();
        let tree = AggregationTree::build(n, fanout);
        let flat = aggregate_refs(AggregationRule::FedAvg, &refs, &weights);
        let hier = aggregate_tree(AggregationRule::FedAvg, &refs, &weights, &tree);
        prop_assert_eq!(
            bits(&flat), bits(&hier),
            "tree (n={}, fanout={}) diverged from flat", n, fanout
        );
    }

    /// A full sampling fraction is the identity on every active set, for
    /// every seed and round — the knob disabled is the knob absent.
    #[test]
    fn full_sample_fraction_is_identity(
        active in prop::collection::vec(0usize..1_000_000, 0..40),
        seed in any::<u64>(),
        round in 0usize..512,
    ) {
        prop_assert_eq!(
            apply_sampling(active.clone(), seed, round, 1.0),
            active.clone()
        );
        // Out-of-range fractions normalise to the same identity.
        prop_assert_eq!(apply_sampling(active.clone(), seed, round, 2.5), active);
    }

    /// Sampling is a pure per-(seed, round, vehicle) predicate: applying
    /// it twice, or to any superset split, picks the same survivors.
    #[test]
    fn sampling_is_a_pure_predicate(
        active in prop::collection::vec(0usize..10_000, 1..60),
        seed in any::<u64>(),
        round in 0usize..64,
    ) {
        let mut active = active;
        active.sort_unstable();
        active.dedup();
        let once = apply_sampling(active.clone(), seed, round, 0.5);
        let twice = apply_sampling(once.clone(), seed, round, 0.5);
        prop_assert_eq!(&once, &twice, "sampling must be idempotent");
        let (a, b) = active.split_at(active.len() / 2);
        let mut split = apply_sampling(a.to_vec(), seed, round, 0.5);
        split.extend(apply_sampling(b.to_vec(), seed, round, 0.5));
        prop_assert_eq!(once, split, "sampling must be per-vehicle");
    }
}

/// The shapes the proptest ranges are most likely to under-sample,
/// pinned explicitly: single-child right spines (`n = fanout^k + 1`),
/// exact powers, ragged last nodes, and the one-participant tree.
#[test]
fn tree_is_bitwise_flat_on_adversarial_shapes() {
    for (n, fanout) in [
        (1usize, 2usize), // single participant, root-only
        (2, 2),           // exactly one full node
        (5, 2),           // 2^2 + 1: single-child chain up the spine
        (9, 2),           // widths [5, 3, 2, 1] — odd every level
        (17, 4),          // 4^2 + 1
        (28, 3),          // 3^3 + 1
        (64, 8),          // exact power: perfectly full tree
        (65, 8),          // exact power + 1
        (63, 8),          // exact power − 1: ragged last leaf
    ] {
        let gs = grads(n, 12);
        let refs: Vec<&[f32]> = gs.iter().map(Vec::as_slice).collect();
        let weights: Vec<f32> = (0..n).map(|i| 1.0 + 0.25 * (i % 4) as f32).collect();
        let tree = AggregationTree::build(n, fanout);
        let flat = aggregate_refs(AggregationRule::FedAvg, &refs, &weights);
        let hier = aggregate_tree(AggregationRule::FedAvg, &refs, &weights, &tree);
        assert_eq!(
            bits(&flat),
            bits(&hier),
            "tree (n={n}, fanout={fanout}) diverged from flat"
        );
    }
}

#[test]
fn knob_parsing_never_panics_and_defaults_safely() {
    // Fan-out: anything below 2 or unparsable means "no tree".
    assert_eq!(parse_fanout(None), None);
    assert_eq!(parse_fanout(Some("")), None);
    assert_eq!(parse_fanout(Some("1")), None);
    assert_eq!(parse_fanout(Some("0")), None);
    assert_eq!(parse_fanout(Some("-3")), None);
    assert_eq!(parse_fanout(Some("wide")), None);
    assert_eq!(parse_fanout(Some(" 8 ")), Some(8));
    // Sampling: anything outside (0, 1) collapses to the identity 1.0.
    for raw in [
        None,
        Some("1.0"),
        Some("1"),
        Some("0"),
        Some("-0.5"),
        Some("nan"),
        Some("x"),
    ] {
        assert_eq!(parse_sample_frac(raw), 1.0, "raw {raw:?}");
    }
    assert_eq!(parse_sample_frac(Some("0.25")), 0.25);
}

fn trained_params(server: Server) -> Vec<f32> {
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 8,
        classes: 10,
    };
    let data = Dataset::digits(60, &DigitStyle::small(), 1);
    let parts = fuiov_data::partition::partition_iid(data.len(), 3, 1);
    let mut clients: Vec<Box<dyn Client>> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, data.subset(&idx), 20, 1)) as Box<dyn Client>
        })
        .collect();
    let mut server = server;
    server.train(&mut clients, &ChurnSchedule::static_membership(3, 4));
    server.params().to_vec()
}

/// End-to-end golden-trace safety: a server with the sampling knob at
/// its identity value and the tree enabled produces *bitwise* the same
/// model as the stock flat server — the unsampled golden trace needs no
/// re-blessing.
#[test]
fn server_with_identity_knobs_reproduces_flat_training_bitwise() {
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 8,
        classes: 10,
    };
    let cfg = || FlConfig::new(4, 0.1).parallel_clients(false);
    let init = spec.build(0).params();
    let flat = trained_params(Server::new(cfg(), init.clone()));
    let frac_one = trained_params(Server::new(cfg(), init.clone()).with_sample_frac(1.0));
    assert_eq!(
        bits(&flat),
        bits(&frac_one),
        "sample_frac 1.0 must be the unsampled code path"
    );
    let treed = trained_params(Server::new(cfg(), init).with_tree_fanout(Some(2)));
    assert_eq!(
        bits(&flat),
        bits(&treed),
        "hierarchical reduction must not perturb the trained bits"
    );
}
