//! FL-crate integration tests: composed features (schedules + sampling +
//! DP + churn) running through the real training loop.

use fuiov_data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov_fl::dp::DpClient;
use fuiov_fl::mobility::{ChurnModel, ChurnSchedule};
use fuiov_fl::{Client, CommsReport, FlConfig, HonestClient, LrSchedule, Server};
use fuiov_nn::ModelSpec;

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 16,
    classes: 10,
};

fn shards(n: usize, seed: u64) -> Vec<Dataset> {
    let data = Dataset::digits(n * 20, &DigitStyle::small(), seed);
    partition_iid(data.len(), n, seed)
        .into_iter()
        .map(|idx| data.subset(&idx))
        .collect()
}

fn honest_clients(n: usize, seed: u64) -> Vec<Box<dyn Client>> {
    shards(n, seed)
        .into_iter()
        .enumerate()
        .map(|(id, d)| Box::new(HonestClient::new(id, SPEC, d, 20, seed)) as Box<dyn Client>)
        .collect()
}

fn accuracy(params: &[f32], seed: u64) -> f32 {
    let test = Dataset::digits(120, &DigitStyle::small(), seed + 500);
    let mut m = SPEC.build(0);
    m.set_params(params);
    let (x, y) = test.full();
    m.accuracy(&x, &y)
}

#[test]
fn cosine_schedule_trains_and_decays_update_norms() {
    let mut clients = honest_clients(4, 31);
    let cfg = FlConfig::new(30, 0.3)
        .batch_size(20)
        .parallel_clients(false)
        .lr_schedule(LrSchedule::Cosine {
            total: 30,
            floor: 0.01,
        });
    let mut server = Server::new(cfg, SPEC.build(31).params());
    server.train(&mut clients, &ChurnSchedule::static_membership(4, 30));
    let acc = accuracy(server.params(), 31);
    assert!(acc > 0.15, "cosine-schedule run should learn: {acc}");
    // Parameter movement shrinks over the anneal: compare early vs late
    // model deltas from the recorded history.
    let h = server.history();
    let early = fuiov_tensor::vector::l2_distance(&h.model(1).unwrap(), &h.model(0).unwrap());
    let late = fuiov_tensor::vector::l2_distance(&h.model(30).unwrap(), &h.model(29).unwrap());
    assert!(
        late < early,
        "late steps should be smaller under cosine decay: {early} -> {late}"
    );
}

#[test]
fn dp_clients_train_with_bounded_updates() {
    let seed = 32;
    let mut clients: Vec<Box<dyn Client>> = shards(4, seed)
        .into_iter()
        .enumerate()
        .map(|(id, d)| {
            let inner = HonestClient::new(id, SPEC, d, 20, seed);
            Box::new(DpClient::new(inner, 0.5, 0.01, seed)) as Box<dyn Client>
        })
        .collect();
    let cfg = FlConfig::new(25, 0.3)
        .batch_size(20)
        .parallel_clients(false);
    let init = SPEC.build(seed).params();
    let before = accuracy(&init, seed);
    let mut server = Server::new(cfg, init);
    server.train(&mut clients, &ChurnSchedule::static_membership(4, 25));
    let after = accuracy(server.params(), seed);
    assert!(
        after > before,
        "DP training should still learn: {before} -> {after}"
    );
    // Every round's aggregated update is bounded by the clip norm (mean
    // of vectors with ‖·‖ ≤ 0.5 + noise slack).
    for s in server.summaries() {
        assert!(
            s.update_norm <= 0.9,
            "round {} update {} exceeds DP bound",
            s.round,
            s.update_norm
        );
    }
}

#[test]
fn sampling_plus_churn_trains_and_accounts_traffic() {
    let seed = 33;
    let n = 8;
    let rounds = 20;
    let mut clients = honest_clients(n, seed);
    let churn = ChurnModel {
        arrival_prob: 0.3,
        departure_prob: 0.01,
        dropout_prob: 0.1,
        initial_active: 4,
    };
    let schedule = ChurnSchedule::sample(&churn, n, rounds, seed);
    let cfg = FlConfig::new(rounds, 0.2)
        .batch_size(20)
        .parallel_clients(false)
        .client_fraction(0.75);
    let mut server = Server::new(cfg, SPEC.build(seed).params()).with_sampling_seed(seed);
    server.train(&mut clients, &schedule);

    let report = CommsReport::from_summaries(SPEC.param_count(), server.summaries());
    assert_eq!(report.rounds().len(), rounds);
    // Sampling + churn: participation below the all-in maximum.
    assert!(report.total_participations() < n * rounds);
    assert!(report.total_participations() > 0);
    // ⌈dim/4⌉ rounding leaves the ratio a hair off the exact 15/16.
    assert!((report.uplink_savings() - 0.9375).abs() < 1e-3);
    // History participation is consistent with the summaries.
    let h = server.history();
    let recorded: usize = (0..rounds).map(|t| h.clients_in_round(t).len()).sum();
    assert_eq!(recorded, report.total_participations());
}

#[test]
fn parallel_pool_handles_uneven_client_counts() {
    // Regression guard for the thread fan-out: client counts that don't
    // divide evenly across threads must still produce identical models.
    for n in [1usize, 3, 7] {
        let mut serial = honest_clients(n, 40 + n as u64);
        let mut parallel = honest_clients(n, 40 + n as u64);
        let schedule = ChurnSchedule::static_membership(n, 4);
        let cfg_s = FlConfig::new(4, 0.1).batch_size(20).parallel_clients(false);
        let cfg_p = FlConfig::new(4, 0.1).batch_size(20).parallel_clients(true);
        let mut s1 = Server::new(cfg_s, SPEC.build(9).params());
        let mut s2 = Server::new(cfg_p, SPEC.build(9).params());
        s1.train(&mut serial, &schedule);
        s2.train(&mut parallel, &schedule);
        assert_eq!(s1.params(), s2.params(), "mismatch at n={n}");
    }
}
