//! Federated-learning simulator for the IoV setting.
//!
//! Implements the paper's §III-A training loop — RSU as server, vehicles
//! as clients, FedAvg aggregation (Eq. 1–2) — plus the IoV dynamics that
//! motivate the unlearning scheme: vehicles join mid-training, drop out of
//! individual rounds, and permanently depart ([`mobility`]).
//!
//! During training the server records everything the unlearning pipeline
//! later consumes (via [`fuiov_storage::HistoryStore`]): per-round global
//! models, per-client gradient directions, join rounds and FedAvg weights.
//!
//! # Example
//!
//! ```
//! use fuiov_fl::{Client, FlConfig, HonestClient, Server};
//! use fuiov_fl::mobility::ChurnSchedule;
//! use fuiov_data::{Dataset, DigitStyle};
//! use fuiov_nn::ModelSpec;
//!
//! let spec = ModelSpec::Mlp { inputs: 144, hidden: 8, classes: 10 };
//! let data = Dataset::digits(40, &DigitStyle::small(), 1);
//! let mut clients: Vec<Box<dyn Client>> = (0..2)
//!     .map(|id| {
//!         let shard = data.subset(&(id * 20..(id + 1) * 20).collect::<Vec<_>>());
//!         Box::new(HonestClient::new(id, spec, shard, 10, 1)) as Box<dyn Client>
//!     })
//!     .collect();
//! let mut server = Server::new(FlConfig::new(3, 0.1), spec.build(0).params());
//! server.train(&mut clients, &ChurnSchedule::static_membership(2, 3));
//! assert_eq!(server.history().rounds().len(), 4); // models w_0..w_3
//! ```

pub mod aggregate;
pub mod client;
pub mod comms;
pub mod config;
pub mod dp;
pub mod hierarchy;
pub mod mobility;
pub mod rsa;
pub mod schedule;
pub mod server;

pub use client::{Client, HonestClient};
pub use comms::CommsReport;
pub use config::{AggregationRule, FlConfig};
pub use dp::DpClient;
pub use hierarchy::{AggregationTree, CohortConfig, CohortRun, VehicleForget};
pub use schedule::LrSchedule;
pub use server::{ForgetRequest, Server, Upload};
