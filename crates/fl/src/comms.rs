//! Communication-cost accounting.
//!
//! Vehicle–RSU links are bandwidth-constrained, so the simulator tracks
//! what a run *would* transmit: each participating vehicle downloads the
//! global model and uploads its update. The report compares full-`f32`
//! uploads against 2-bit sign-compressed uploads (the RSA-style channel
//! the paper's storage format mirrors).

use crate::server::RoundSummary;

/// Byte counts one round would transmit with `participants` vehicles on a
/// `model_dim`-parameter model: `(download, full-f32 upload, 2-bit sign
/// upload)`. Shared by [`CommsReport`] and the server's live round
/// accounting so the two can never disagree.
pub fn round_bytes(model_dim: usize, participants: usize) -> (usize, usize, usize) {
    let model_bytes = model_dim * 4;
    let sign_bytes = model_dim.div_ceil(4);
    (
        participants * model_bytes,
        participants * model_bytes,
        participants * sign_bytes,
    )
}

/// Per-tier byte counts for one hierarchical round: what crosses the
/// vehicle–RSU links versus what crosses the RSU/edge backhaul.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBytes {
    /// Model download to participating vehicles (participants × 4·d).
    pub down_vehicle: usize,
    /// Model fan-out across inter-tier links (one per non-root node).
    pub down_inter: usize,
    /// Sign-compressed vehicle uploads (participants × ⌈d/4⌉).
    pub up_vehicle_sign: usize,
    /// Full-`f32` partial aggregates forwarded up inter-tier links (one
    /// per non-root node — each node uploads exactly one reduced vector).
    pub up_inter_full: usize,
}

impl TierBytes {
    /// Accumulates another round's counts into a running total.
    pub fn accumulate(&mut self, other: &TierBytes) {
        self.down_vehicle += other.down_vehicle;
        self.down_inter += other.down_inter;
        self.up_vehicle_sign += other.up_vehicle_sign;
        self.up_inter_full += other.up_inter_full;
    }
}

/// Byte counts one hierarchical round would transmit: vehicles talk to
/// their leaf aggregator, and every non-root tree node exchanges one
/// model-sized vector per direction with its parent. The vehicle-tier
/// numbers are identical to [`round_bytes`], so enabling the tree only
/// *adds* the inter-tier columns.
pub fn tree_round_bytes(
    model_dim: usize,
    participants: usize,
    tree: &crate::hierarchy::AggregationTree,
) -> TierBytes {
    let model_bytes = model_dim * 4;
    let (down, _, up_sign) = round_bytes(model_dim, participants);
    let inter_links = tree.node_count().saturating_sub(1);
    TierBytes {
        down_vehicle: down,
        down_inter: inter_links * model_bytes,
        up_vehicle_sign: up_sign,
        up_inter_full: inter_links * model_bytes,
    }
}

/// Byte counts one *cohort* round actually transmits under churn and
/// participant sampling. The vehicle-tier columns scale with the
/// **sampled** participant count — when `FUIOV_SAMPLE_FRAC` filters the
/// cohort, a vehicle that was sampled out this round neither downloads
/// the model nor uploads a direction, and the accounting must say so
/// (counting the full cohort was exactly the bug this function fixes).
/// Inter-tier links likewise count only *active* RSU leaves (a leaf with
/// no sampled members is silent), plus one link per non-root edge-tree
/// node; `edge_nodes == 0` means the single leaf is the root (no
/// backhaul at all).
pub fn cohort_round_bytes(
    model_dim: usize,
    participants: usize,
    active_leaves: usize,
    edge_nodes: usize,
) -> TierBytes {
    let model_bytes = model_dim * 4;
    let (down, _, up_sign) = round_bytes(model_dim, participants);
    let inter_links = if edge_nodes == 0 {
        0
    } else {
        active_leaves + edge_nodes - 1
    };
    TierBytes {
        down_vehicle: down,
        down_inter: inter_links * model_bytes,
        up_vehicle_sign: up_sign,
        up_inter_full: inter_links * model_bytes,
    }
}

/// Byte counts for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundComms {
    /// Round index.
    pub round: usize,
    /// Participating vehicles.
    pub participants: usize,
    /// Model download bytes (participants × 4·d).
    pub down_bytes: usize,
    /// Gradient upload bytes at full `f32` precision.
    pub up_bytes_full: usize,
    /// Gradient upload bytes at 2 bits/element.
    pub up_bytes_sign: usize,
}

/// Aggregate communication report for a training run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommsReport {
    rounds: Vec<RoundComms>,
    model_dim: usize,
}

impl CommsReport {
    /// Builds the report from a server's round summaries and model size.
    ///
    /// # Panics
    ///
    /// Panics if `model_dim == 0`.
    pub fn from_summaries(model_dim: usize, summaries: &[RoundSummary]) -> Self {
        assert!(model_dim > 0, "CommsReport: model_dim must be positive");
        let rounds = summaries
            .iter()
            .map(|s| {
                let (down, full, sign) = round_bytes(model_dim, s.participants.len());
                RoundComms {
                    round: s.round,
                    participants: s.participants.len(),
                    down_bytes: down,
                    up_bytes_full: full,
                    up_bytes_sign: sign,
                }
            })
            .collect();
        CommsReport { rounds, model_dim }
    }

    /// Model dimension the report was built for.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Per-round entries.
    pub fn rounds(&self) -> &[RoundComms] {
        &self.rounds
    }

    /// Total download bytes across the run.
    pub fn total_down(&self) -> usize {
        self.rounds.iter().map(|r| r.down_bytes).sum()
    }

    /// Total full-precision upload bytes.
    pub fn total_up_full(&self) -> usize {
        self.rounds.iter().map(|r| r.up_bytes_full).sum()
    }

    /// Total sign-compressed upload bytes.
    pub fn total_up_sign(&self) -> usize {
        self.rounds.iter().map(|r| r.up_bytes_sign).sum()
    }

    /// Uplink savings of sign compression across the run (`0.0` for an
    /// empty run).
    pub fn uplink_savings(&self) -> f64 {
        let full = self.total_up_full();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.total_up_sign() as f64 / full as f64
    }

    /// Total vehicle-rounds (sum of participants over rounds).
    pub fn total_participations(&self) -> usize {
        self.rounds.iter().map(|r| r.participants).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries() -> Vec<RoundSummary> {
        vec![
            RoundSummary {
                round: 0,
                participants: vec![0, 1, 2],
                update_norm: 1.0,
            },
            RoundSummary {
                round: 1,
                participants: vec![0, 2],
                update_norm: 0.5,
            },
            RoundSummary {
                round: 2,
                participants: vec![],
                update_norm: 0.0,
            },
        ]
    }

    #[test]
    fn per_round_byte_counts() {
        let r = CommsReport::from_summaries(100, &summaries());
        assert_eq!(r.rounds()[0].down_bytes, 3 * 400);
        assert_eq!(r.rounds()[0].up_bytes_full, 3 * 400);
        assert_eq!(r.rounds()[0].up_bytes_sign, 3 * 25);
        assert_eq!(r.rounds()[2].down_bytes, 0);
    }

    #[test]
    fn totals_and_savings() {
        let r = CommsReport::from_summaries(100, &summaries());
        assert_eq!(r.total_participations(), 5);
        assert_eq!(r.total_down(), 5 * 400);
        assert_eq!(r.total_up_full(), 5 * 400);
        assert_eq!(r.total_up_sign(), 5 * 25);
        assert!((r.uplink_savings() - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn tier_bytes_split_vehicle_and_backhaul() {
        use crate::hierarchy::AggregationTree;
        // 12 participants at fan-out 3: widths [4, 2, 1] → 7 nodes,
        // 6 inter-tier links.
        let tree = AggregationTree::build(12, 3);
        let t = tree_round_bytes(100, 12, &tree);
        assert_eq!(t.down_vehicle, 12 * 400);
        assert_eq!(t.up_vehicle_sign, 12 * 25);
        assert_eq!(t.down_inter, 6 * 400);
        assert_eq!(t.up_inter_full, 6 * 400);
        // A root-only tree has no inter-tier links at all.
        let solo = AggregationTree::build(2, 4);
        let t = tree_round_bytes(100, 2, &solo);
        assert_eq!(t.down_inter, 0);
        assert_eq!(t.up_inter_full, 0);
    }

    #[test]
    fn empty_run_is_zero() {
        let r = CommsReport::from_summaries(10, &[]);
        assert_eq!(r.total_down(), 0);
        assert_eq!(r.uplink_savings(), 0.0);
    }

    #[test]
    fn report_from_live_server() {
        use crate::client::HonestClient;
        use crate::config::FlConfig;
        use crate::mobility::ChurnSchedule;
        use crate::server::Server;
        use crate::Client;
        use fuiov_data::{Dataset, DigitStyle};
        use fuiov_nn::ModelSpec;

        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        let data = Dataset::digits(40, &DigitStyle::small(), 1);
        let parts = fuiov_data::partition::partition_iid(data.len(), 2, 1);
        let mut clients: Vec<Box<dyn Client>> = parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, spec, data.subset(&idx), 20, 1)) as Box<dyn Client>
            })
            .collect();
        let mut server = Server::new(
            FlConfig::new(3, 0.1).parallel_clients(false),
            spec.build(0).params(),
        );
        server.train(&mut clients, &ChurnSchedule::static_membership(2, 3));
        let report = CommsReport::from_summaries(spec.param_count(), server.summaries());
        assert_eq!(report.rounds().len(), 3);
        assert_eq!(report.total_participations(), 6);
        assert!(report.uplink_savings() > 0.93);
    }
}
