//! Federated-training configuration.

use crate::schedule::LrSchedule;
use fuiov_storage::Round;

/// Aggregation rule applied to client gradients each round.
///
/// The paper trains and recovers with [`AggregationRule::FedAvg`] (Eq. 1);
/// the robust rules are provided for the defence-comparison ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregationRule {
    /// Dataset-size-weighted mean (Eq. 1).
    FedAvg,
    /// Coordinate-wise median — a classic Byzantine-robust rule.
    CoordinateMedian,
    /// Coordinate-wise trimmed mean dropping the `trim` largest and
    /// smallest values per coordinate.
    TrimmedMean {
        /// Number of extreme values trimmed from each side.
        trim: usize,
    },
    /// RSA-style sign aggregation (Li et al. 2019, Eq. 3): the update is
    /// `λ · Σᵢ sign(gᵢ)`, using only directions.
    SignSgd {
        /// Step scale λ.
        lambda: f32,
    },
}

/// Configuration for a federated training run.
///
/// Construct with [`FlConfig::new`] and customise with the builder
/// methods:
///
/// ```
/// use fuiov_fl::config::{AggregationRule, FlConfig};
/// let cfg = FlConfig::new(100, 1e-4)
///     .batch_size(128)
///     .sign_delta(1e-6)
///     .aggregation(AggregationRule::FedAvg);
/// assert_eq!(cfg.rounds, 100);
/// ```
#[derive(Debug, Clone)]
pub struct FlConfig {
    /// Total number of federated rounds `T`.
    pub rounds: Round,
    /// Server learning rate `η`.
    pub lr: f32,
    /// Client mini-batch size.
    pub batch_size: usize,
    /// Max mini-batches a client processes per round (`None` = full epoch).
    pub batches_per_round: Option<usize>,
    /// Aggregation rule `𝒜`.
    pub aggregation: AggregationRule,
    /// Sign-quantisation threshold `δ` for the history store.
    pub sign_delta: f32,
    /// Whether the server also keeps full `f32` gradients (needed by the
    /// FedRecover baseline; the paper's scheme keeps this off).
    pub keep_full_gradients: bool,
    /// Run client gradient computations on a thread pool.
    pub parallel_clients: bool,
    /// Learning-rate schedule applied on top of `lr`.
    pub lr_schedule: LrSchedule,
    /// Fraction of in-range vehicles the RSU samples each round
    /// (classic FedAvg client sampling; 1.0 = everyone, the paper's
    /// setting). At least one vehicle is always sampled when any is in
    /// range.
    pub client_fraction: f32,
}

impl FlConfig {
    /// A configuration with the paper's defaults for everything but the
    /// two required parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `lr` is not strictly positive.
    pub fn new(rounds: Round, lr: f32) -> Self {
        assert!(rounds > 0, "FlConfig: rounds must be positive");
        assert!(
            lr > 0.0 && lr.is_finite(),
            "FlConfig: invalid learning rate"
        );
        FlConfig {
            rounds,
            lr,
            batch_size: 128,
            batches_per_round: None,
            aggregation: AggregationRule::FedAvg,
            sign_delta: 1e-6,
            keep_full_gradients: false,
            parallel_clients: true,
            lr_schedule: LrSchedule::Constant,
            client_fraction: 1.0,
        }
    }

    /// The learning rate in force at `round` under the schedule.
    pub fn lr_at(&self, round: Round) -> f32 {
        self.lr_schedule.lr_at(round, self.lr)
    }

    /// Sets the client mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "FlConfig: batch_size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Limits how many mini-batches each client processes per round.
    pub fn batches_per_round(mut self, n: usize) -> Self {
        self.batches_per_round = Some(n);
        self
    }

    /// Sets the aggregation rule.
    pub fn aggregation(mut self, rule: AggregationRule) -> Self {
        self.aggregation = rule;
        self
    }

    /// Sets the sign-quantisation threshold δ.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn sign_delta(mut self, delta: f32) -> Self {
        assert!(delta >= 0.0, "FlConfig: delta must be >= 0");
        self.sign_delta = delta;
        self
    }

    /// Also store full gradients (for FedRecover-style baselines).
    pub fn keep_full_gradients(mut self, keep: bool) -> Self {
        self.keep_full_gradients = keep;
        self
    }

    /// Enables or disables the client thread pool.
    pub fn parallel_clients(mut self, parallel: bool) -> Self {
        self.parallel_clients = parallel;
        self
    }

    /// Sets the learning-rate schedule.
    pub fn lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Sets the per-round client sampling fraction.
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    pub fn client_fraction(mut self, fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "FlConfig: client_fraction must be in (0, 1]"
        );
        self.client_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = FlConfig::new(100, 1e-4);
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.aggregation, AggregationRule::FedAvg);
        assert!((cfg.sign_delta - 1e-6).abs() < 1e-12);
        assert!(!cfg.keep_full_gradients);
    }

    #[test]
    fn builder_chains() {
        let cfg = FlConfig::new(10, 0.1)
            .batch_size(32)
            .batches_per_round(2)
            .aggregation(AggregationRule::TrimmedMean { trim: 1 })
            .sign_delta(0.0)
            .keep_full_gradients(true)
            .parallel_clients(false);
        assert_eq!(cfg.batch_size, 32);
        assert_eq!(cfg.batches_per_round, Some(2));
        assert_eq!(cfg.aggregation, AggregationRule::TrimmedMean { trim: 1 });
        assert!(cfg.keep_full_gradients);
        assert!(!cfg.parallel_clients);
    }

    #[test]
    fn lr_schedule_applies() {
        let cfg = FlConfig::new(20, 1.0).lr_schedule(LrSchedule::StepDecay {
            every: 5,
            factor: 0.5,
        });
        assert_eq!(cfg.lr_at(0), 1.0);
        assert_eq!(cfg.lr_at(5), 0.5);
        assert_eq!(cfg.lr_at(10), 0.25);
    }

    #[test]
    fn client_fraction_builder() {
        let cfg = FlConfig::new(5, 0.1).client_fraction(0.3);
        assert_eq!(cfg.client_fraction, 0.3);
    }

    #[test]
    #[should_panic(expected = "client_fraction must be in (0, 1]")]
    fn rejects_zero_fraction() {
        let _ = FlConfig::new(5, 0.1).client_fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn rejects_zero_rounds() {
        let _ = FlConfig::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_bad_lr() {
        let _ = FlConfig::new(1, -0.1);
    }
}
