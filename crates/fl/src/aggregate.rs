//! Gradient aggregation rules.

use crate::config::AggregationRule;
use fuiov_tensor::vector;

/// Aggregates client gradients into one server update according to `rule`.
///
/// For [`AggregationRule::FedAvg`] this is Eq. 1:
/// `𝒜(g¹..gⁿ) = Σ‖Dᵢ‖·gⁱ / Σ‖Dᵢ‖`.
///
/// # Panics
///
/// Panics if `grads` is empty, lengths are inconsistent, or the rule's
/// preconditions are violated (e.g. trimming more values than clients).
pub fn aggregate(rule: AggregationRule, grads: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
    aggregate_refs(rule, &refs, weights)
}

/// [`aggregate`] over borrowed gradient slices.
///
/// The recovery replay keeps every client's estimate as a row of one flat
/// scratch matrix; this variant aggregates those rows without cloning them
/// into owned vectors first.
///
/// # Panics
///
/// As [`aggregate`].
pub fn aggregate_refs(rule: AggregationRule, grads: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!grads.is_empty(), "aggregate: no gradients");
    assert_eq!(
        grads.len(),
        weights.len(),
        "aggregate: weight count mismatch"
    );
    let dim = grads[0].len();
    for g in grads {
        assert_eq!(g.len(), dim, "aggregate: gradient length mismatch");
    }
    match rule {
        AggregationRule::FedAvg => vector::weighted_mean(grads, weights),
        AggregationRule::CoordinateMedian => coordinate_stat(grads, |vals| {
            fuiov_tensor::stats::median(vals).expect("non-empty")
        }),
        AggregationRule::TrimmedMean { trim } => {
            assert!(
                2 * trim < grads.len(),
                "aggregate: trim {trim} too large for {} clients",
                grads.len()
            );
            coordinate_stat(grads, |vals| {
                let mut sorted = vals.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let kept = &sorted[trim..sorted.len() - trim];
                fuiov_tensor::stats::mean(kept)
            })
        }
        AggregationRule::SignSgd { lambda } => {
            let mut out = vec![0.0f32; dim];
            for g in grads {
                for (o, &v) in out.iter_mut().zip(*g) {
                    *o += if v > 0.0 {
                        1.0
                    } else if v < 0.0 {
                        -1.0
                    } else {
                        0.0
                    };
                }
            }
            vector::scale(lambda, &mut out);
            out
        }
    }
}

/// In-place form of [`aggregate_refs`]: the result lands in `out` and the
/// FedAvg `f64` accumulator lives in `acc`, both recycled by the caller
/// (server round loop, hierarchy tree nodes), so the steady state
/// aggregates without any per-round allocation.
///
/// Bitwise identical to [`aggregate_refs`] for every rule: FedAvg routes
/// through [`vector::weighted_mean_into`] (same fold, same order); the
/// remaining rules compute through the identical code and are copied into
/// `out`.
///
/// # Panics
///
/// As [`aggregate`].
pub fn aggregate_refs_into(
    rule: AggregationRule,
    grads: &[&[f32]],
    weights: &[f32],
    acc: &mut Vec<f64>,
    out: &mut Vec<f32>,
) {
    assert!(!grads.is_empty(), "aggregate: no gradients");
    assert_eq!(
        grads.len(),
        weights.len(),
        "aggregate: weight count mismatch"
    );
    let dim = grads[0].len();
    for g in grads {
        assert_eq!(g.len(), dim, "aggregate: gradient length mismatch");
    }
    match rule {
        AggregationRule::FedAvg => vector::weighted_mean_into(grads, weights, acc, out),
        _ => {
            let r = aggregate_refs(rule, grads, weights);
            out.clear();
            out.extend_from_slice(&r);
        }
    }
}

fn coordinate_stat(grads: &[&[f32]], stat: impl Fn(&[f32]) -> f32) -> Vec<f32> {
    let dim = grads[0].len();
    let mut column = vec![0.0f32; grads.len()];
    (0..dim)
        .map(|j| {
            for (c, g) in column.iter_mut().zip(grads) {
                *c = g[j];
            }
            stat(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads() -> Vec<Vec<f32>> {
        vec![vec![1.0, -2.0], vec![3.0, 0.0], vec![100.0, 2.0]]
    }

    #[test]
    fn fedavg_weighted() {
        let out = aggregate(
            AggregationRule::FedAvg,
            &[vec![1.0, 0.0], vec![3.0, 4.0]],
            &[1.0, 3.0],
        );
        assert_eq!(out, vec![2.5, 3.0]);
    }

    #[test]
    fn fedavg_equal_weights_is_mean() {
        let out = aggregate(AggregationRule::FedAvg, &grads(), &[1.0, 1.0, 1.0]);
        assert!((out[0] - 104.0 / 3.0).abs() < 1e-4);
        assert!((out[1] - 0.0).abs() < 1e-5);
    }

    #[test]
    fn median_resists_outlier() {
        let out = aggregate(AggregationRule::CoordinateMedian, &grads(), &[1.0; 3]);
        assert_eq!(out, vec![3.0, 0.0]);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let out = aggregate(
            AggregationRule::TrimmedMean { trim: 1 },
            &grads(),
            &[1.0; 3],
        );
        assert_eq!(out, vec![3.0, 0.0]);
    }

    #[test]
    fn sign_sgd_sums_directions() {
        let out = aggregate(
            AggregationRule::SignSgd { lambda: 0.5 },
            &grads(),
            &[1.0; 3],
        );
        assert_eq!(out, vec![1.5, 0.0]);
    }

    #[test]
    fn aggregate_refs_into_is_bitwise_identical_for_every_rule() {
        let gs = grads();
        let refs: Vec<&[f32]> = gs.iter().map(Vec::as_slice).collect();
        let weights = [1.0f32, 2.5, 0.5];
        let mut acc = Vec::new();
        let mut out = Vec::new();
        for rule in [
            AggregationRule::FedAvg,
            AggregationRule::CoordinateMedian,
            AggregationRule::TrimmedMean { trim: 1 },
            AggregationRule::SignSgd { lambda: 0.5 },
        ] {
            let baseline = aggregate_refs(rule, &refs, &weights);
            aggregate_refs_into(rule, &refs, &weights, &mut acc, &mut out);
            let a: Vec<u32> = baseline.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "{rule:?} diverged from aggregate_refs");
        }
    }

    #[test]
    #[should_panic(expected = "trim 2 too large")]
    fn trim_bound_checked() {
        let _ = aggregate(
            AggregationRule::TrimmedMean { trim: 2 },
            &grads(),
            &[1.0; 3],
        );
    }

    #[test]
    #[should_panic(expected = "no gradients")]
    fn empty_input_panics() {
        let _ = aggregate(AggregationRule::FedAvg, &[], &[]);
    }
}
