//! Learning-rate schedules.
//!
//! The paper trains at a constant rate; step decay and cosine annealing
//! are provided for the convergence ablations (they also exercise the
//! history store with non-constant step sizes, which the recovery-rate
//! calibration has to average over).

use fuiov_storage::Round;

/// A learning-rate schedule mapping `(round, base_lr) → lr`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant `base_lr` (the paper's setting).
    #[default]
    Constant,
    /// Multiply by `factor` every `every` rounds.
    StepDecay {
        /// Decay period in rounds.
        every: Round,
        /// Multiplicative factor per period (usually < 1).
        factor: f32,
    },
    /// Cosine annealing from `base_lr` to `base_lr · floor` over `total`
    /// rounds.
    Cosine {
        /// Total rounds of the anneal.
        total: Round,
        /// Final lr as a fraction of the base (e.g. 0.01).
        floor: f32,
    },
}

impl LrSchedule {
    /// Learning rate in force at `round`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are degenerate (`every == 0`,
    /// `total == 0`).
    pub fn lr_at(&self, round: Round, base_lr: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "LrSchedule::StepDecay: every must be positive");
                base_lr * factor.powi((round / every) as i32)
            }
            LrSchedule::Cosine { total, floor } => {
                assert!(total > 0, "LrSchedule::Cosine: total must be positive");
                let t = (round.min(total) as f32) / (total as f32);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                base_lr * (floor + (1.0 - floor) * cos)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        assert_eq!(LrSchedule::Constant.lr_at(0, 0.1), 0.1);
        assert_eq!(LrSchedule::Constant.lr_at(999, 0.1), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr_at(0, 1.0), 1.0);
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert_eq!(s.lr_at(10, 1.0), 0.5);
        assert_eq!(s.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn cosine_anneals_to_floor() {
        let s = LrSchedule::Cosine {
            total: 100,
            floor: 0.1,
        };
        assert!((s.lr_at(0, 1.0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100, 1.0) - 0.1).abs() < 1e-6);
        let mid = s.lr_at(50, 1.0);
        assert!(mid > 0.1 && mid < 1.0);
        // Past the horizon it clamps at the floor.
        assert!((s.lr_at(150, 1.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::Cosine {
            total: 40,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for t in 0..=40 {
            let lr = s.lr_at(t, 1.0);
            assert!(lr <= prev + 1e-6);
            prev = lr;
        }
    }
}
