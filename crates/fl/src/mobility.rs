//! IoV churn: vehicles joining, leaving and dropping out of the RSU's
//! federation.
//!
//! The paper's core motivation (§II, Challenge II) is that vehicles join
//! FL *at any time* and may leave or drop out before an unlearning request
//! arrives. This module produces deterministic per-round membership
//! schedules with exactly those dynamics, so experiments can e.g. forget a
//! vehicle that joined at round `F = 2` while other vehicles have already
//! left the federation.

use fuiov_storage::{ClientId, Round};
use fuiov_tensor::rng::{rng_for, streams};
use rand::Rng;

/// Parameters of the vehicle-churn process.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    /// Probability per round that an unjoined vehicle arrives in RSU range.
    pub arrival_prob: f64,
    /// Probability per round that an active vehicle permanently departs.
    pub departure_prob: f64,
    /// Probability per round that an active vehicle drops out of *this*
    /// round only (temporary connectivity loss).
    pub dropout_prob: f64,
    /// Number of vehicles present from round 0.
    pub initial_active: usize,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            arrival_prob: 0.15,
            departure_prob: 0.01,
            dropout_prob: 0.05,
            initial_active: 0,
        }
    }
}

/// A vehicle's membership interval plus its per-round dropout record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// First round the vehicle participates in.
    pub joined: Round,
    /// Round after which the vehicle permanently leaves (inclusive last
    /// active round), or `None` if it stays to the end.
    pub leaves_after: Option<Round>,
    /// Rounds in `[joined, leaves_after]` the vehicle missed.
    pub dropouts: Vec<Round>,
}

impl Membership {
    /// A vehicle present for the whole run with no dropouts.
    pub fn always() -> Self {
        Membership {
            joined: 0,
            leaves_after: None,
            dropouts: Vec::new(),
        }
    }

    /// Whether the vehicle participates in `round`.
    pub fn active_in(&self, round: Round) -> bool {
        round >= self.joined
            && self.leaves_after.is_none_or(|l| round <= l)
            && !self.dropouts.contains(&round)
    }
}

/// A full membership schedule: one [`Membership`] per vehicle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSchedule {
    memberships: Vec<Membership>,
    rounds: Round,
}

impl ChurnSchedule {
    /// Builds a schedule where every one of `n` vehicles is active in all
    /// `rounds` rounds — the static-membership setting the comparison
    /// baselines assume (§V-A3: "vehicles do not exit FL in the comparison
    /// methods").
    pub fn static_membership(n: usize, rounds: Round) -> Self {
        ChurnSchedule {
            memberships: vec![Membership::always(); n],
            rounds,
        }
    }

    /// Builds a schedule from explicit memberships.
    pub fn from_memberships(memberships: Vec<Membership>, rounds: Round) -> Self {
        ChurnSchedule {
            memberships,
            rounds,
        }
    }

    /// Samples a schedule for `n` vehicles over `rounds` rounds.
    ///
    /// Vehicles beyond `model.initial_active` join according to the
    /// arrival process; every active vehicle may depart permanently or
    /// drop out per round. Vehicles that never manage to join are given a
    /// join round at the end (they arrive just as the run finishes and
    /// participate zero times).
    pub fn sample(model: &ChurnModel, n: usize, rounds: Round, seed: u64) -> Self {
        let mut memberships = Vec::with_capacity(n);
        for v in 0..n {
            let mut rng = rng_for(seed, streams::CHURN + v as u64);
            let joined = if v < model.initial_active {
                0
            } else {
                let mut j = rounds; // default: never effectively joins
                for t in 0..rounds {
                    if rng.gen_bool(model.arrival_prob) {
                        j = t;
                        break;
                    }
                }
                j
            };
            let mut leaves_after = None;
            let mut dropouts = Vec::new();
            for t in joined..rounds {
                if rng.gen_bool(model.departure_prob) {
                    leaves_after = Some(t);
                    break;
                }
                if rng.gen_bool(model.dropout_prob) {
                    dropouts.push(t);
                }
            }
            memberships.push(Membership {
                joined,
                leaves_after,
                dropouts,
            });
        }
        ChurnSchedule {
            memberships,
            rounds,
        }
    }

    /// Number of vehicles in the schedule.
    pub fn len(&self) -> usize {
        self.memberships.len()
    }

    /// Whether the schedule covers zero vehicles.
    pub fn is_empty(&self) -> bool {
        self.memberships.is_empty()
    }

    /// Total rounds the schedule covers.
    pub fn rounds(&self) -> Round {
        self.rounds
    }

    /// The membership record of vehicle `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn membership(&self, v: ClientId) -> &Membership {
        &self.memberships[v]
    }

    /// Overrides vehicle `v`'s membership (used by experiments to pin the
    /// forgotten client's join round to the paper's `F = 2`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_membership(&mut self, v: ClientId, m: Membership) {
        self.memberships[v] = m;
    }

    /// Vehicles active in `round`, ascending.
    pub fn active_in(&self, round: Round) -> Vec<ClientId> {
        (0..self.memberships.len())
            .filter(|&v| self.memberships[v].active_in(round))
            .collect()
    }

    /// Vehicles that have permanently left before `round` begins.
    pub fn departed_before(&self, round: Round) -> Vec<ClientId> {
        (0..self.memberships.len())
            .filter(|&v| self.memberships[v].leaves_after.is_some_and(|l| l < round))
            .collect()
    }
}

/// O(1)-memory churn: the same join/leave/dropout dynamics as
/// [`ChurnSchedule::sample`], derived on demand from a seeded hash stream
/// instead of materialised `Vec`s. A 10⁶-vehicle schedule is three words —
/// model, horizon, seed — and every membership query is a closed-form
/// geometric draw plus one per-`(vehicle, round)` dropout hash, so the
/// hot path never touches `dropouts: Vec<Round>`.
///
/// `LazyChurn` is its own deterministic process (hash stream, not the
/// sequential `rand` draws of [`ChurnSchedule::sample`]), so the two are
/// not bit-equal; the materialised form stays the small-n test fixture,
/// and [`LazyChurn::materialise`] bridges into it when an experiment
/// needs the `Vec` API.
#[derive(Debug, Clone, Copy)]
pub struct LazyChurn {
    model: ChurnModel,
    rounds: Round,
    seed: u64,
}

const LAZY_JOIN: u64 = 1;
const LAZY_LEAVE: u64 = 2;
const LAZY_DROP: u64 = 3;

/// SplitMix64 finaliser: avalanche a 64-bit key.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from the top 53 bits of a mixed key.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// First success of a Bernoulli(`p`) sequence via inversion: the
/// closed-form replacement for drawing round-by-round.
fn geometric(p: f64, u: f64) -> f64 {
    if p >= 1.0 {
        0.0
    } else {
        ((1.0 - u).ln() / (1.0 - p).ln()).floor()
    }
}

impl LazyChurn {
    /// A lazy schedule for `rounds` rounds under `model`, keyed by `seed`.
    pub fn new(model: ChurnModel, rounds: Round, seed: u64) -> Self {
        LazyChurn {
            model,
            rounds,
            seed,
        }
    }

    fn draw(&self, stream: u64, v: ClientId, t: Round) -> f64 {
        let key = mix64(self.seed ^ streams::CHURN ^ mix64(stream))
            ^ mix64(v as u64 ^ mix64(t as u64).rotate_left(17));
        unit(mix64(key))
    }

    /// Total rounds the schedule covers.
    pub fn rounds(&self) -> Round {
        self.rounds
    }

    /// First round vehicle `v` participates in; `rounds` if it never
    /// arrives within the horizon (same convention as the materialised
    /// sampler).
    pub fn joined(&self, v: ClientId) -> Round {
        if v < self.model.initial_active {
            return 0;
        }
        if self.model.arrival_prob <= 0.0 {
            return self.rounds;
        }
        let g = geometric(self.model.arrival_prob, self.draw(LAZY_JOIN, v, 0));
        (g as Round).min(self.rounds)
    }

    /// Inclusive last active round if `v` departs within the horizon.
    pub fn leaves_after(&self, v: ClientId) -> Option<Round> {
        let joined = self.joined(v);
        if joined >= self.rounds || self.model.departure_prob <= 0.0 {
            return None;
        }
        let g = geometric(self.model.departure_prob, self.draw(LAZY_LEAVE, v, 0));
        let last = joined + (g.min(self.rounds as f64) as Round);
        (last < self.rounds).then_some(last)
    }

    /// Whether `v` misses `round` to a temporary dropout.
    pub fn drops_out(&self, v: ClientId, round: Round) -> bool {
        self.model.dropout_prob > 0.0 && self.draw(LAZY_DROP, v, round) < self.model.dropout_prob
    }

    /// Whether `v` participates in `round` — the hot-path predicate.
    pub fn active_in(&self, v: ClientId, round: Round) -> bool {
        round >= self.joined(v)
            && self.leaves_after(v).is_none_or(|l| round <= l)
            && !self.drops_out(v, round)
    }

    /// Materialises vehicle `v`'s membership (small-n test bridge).
    pub fn membership(&self, v: ClientId) -> Membership {
        let joined = self.joined(v);
        let leaves_after = self.leaves_after(v);
        let last = leaves_after.unwrap_or(self.rounds.saturating_sub(1));
        let dropouts = (joined..=last.min(self.rounds.saturating_sub(1)))
            .filter(|&t| self.drops_out(v, t))
            .collect();
        Membership {
            joined,
            leaves_after,
            dropouts,
        }
    }

    /// Materialises the first `n` vehicles into a [`ChurnSchedule`].
    pub fn materialise(&self, n: usize) -> ChurnSchedule {
        ChurnSchedule::from_memberships((0..n).map(|v| self.membership(v)).collect(), self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_everyone_active_every_round() {
        let s = ChurnSchedule::static_membership(5, 10);
        for t in 0..10 {
            assert_eq!(s.active_in(t), vec![0, 1, 2, 3, 4]);
        }
        assert!(s.departed_before(10).is_empty());
    }

    #[test]
    fn membership_interval_logic() {
        let m = Membership {
            joined: 3,
            leaves_after: Some(7),
            dropouts: vec![5],
        };
        assert!(!m.active_in(2));
        assert!(m.active_in(3));
        assert!(!m.active_in(5)); // dropout
        assert!(m.active_in(7));
        assert!(!m.active_in(8)); // left
    }

    #[test]
    fn sample_is_deterministic() {
        let model = ChurnModel {
            initial_active: 3,
            ..Default::default()
        };
        let a = ChurnSchedule::sample(&model, 10, 20, 42);
        let b = ChurnSchedule::sample(&model, 10, 20, 42);
        assert_eq!(a, b);
        let c = ChurnSchedule::sample(&model, 10, 20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn initial_active_join_at_zero() {
        let model = ChurnModel {
            initial_active: 4,
            arrival_prob: 0.0,
            departure_prob: 0.0,
            dropout_prob: 0.0,
        };
        let s = ChurnSchedule::sample(&model, 6, 10, 1);
        for v in 0..4 {
            assert_eq!(s.membership(v).joined, 0);
        }
        // Later vehicles never arrive (arrival_prob 0) → join == rounds.
        assert_eq!(s.membership(4).joined, 10);
        assert!(s.active_in(5).len() == 4);
    }

    #[test]
    fn high_departure_produces_departed_vehicles() {
        let model = ChurnModel {
            initial_active: 20,
            arrival_prob: 0.0,
            departure_prob: 0.5,
            dropout_prob: 0.0,
        };
        let s = ChurnSchedule::sample(&model, 20, 30, 9);
        assert!(
            s.departed_before(30).len() > 10,
            "most vehicles should have departed"
        );
    }

    #[test]
    fn set_membership_pins_join_round() {
        let mut s = ChurnSchedule::static_membership(3, 10);
        s.set_membership(
            1,
            Membership {
                joined: 2,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        assert!(!s.active_in(1).contains(&1));
        assert!(s.active_in(2).contains(&1));
    }

    #[test]
    fn lazy_predicate_matches_its_materialised_membership() {
        let model = ChurnModel {
            initial_active: 10,
            ..Default::default()
        };
        let lazy = LazyChurn::new(model, 30, 77);
        let schedule = lazy.materialise(50);
        for v in 0..50 {
            let m = schedule.membership(v);
            for t in 0..30 {
                assert_eq!(
                    m.active_in(t),
                    lazy.active_in(v, t),
                    "vehicle {v} round {t}: predicate and Vec form disagree"
                );
            }
        }
    }

    #[test]
    fn lazy_is_deterministic_and_seed_sensitive() {
        let model = ChurnModel::default();
        let a = LazyChurn::new(model, 20, 5).materialise(40);
        let b = LazyChurn::new(model, 20, 5).materialise(40);
        assert_eq!(a, b);
        let c = LazyChurn::new(model, 20, 6).materialise(40);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn lazy_initial_active_and_never_arriving() {
        let model = ChurnModel {
            initial_active: 4,
            arrival_prob: 0.0,
            departure_prob: 0.0,
            dropout_prob: 0.0,
        };
        let lazy = LazyChurn::new(model, 10, 1);
        for v in 0..4 {
            assert_eq!(lazy.joined(v), 0);
            assert!(lazy.active_in(v, 9));
        }
        assert_eq!(lazy.joined(4), 10, "arrival_prob 0 means never joins");
        assert!(!lazy.active_in(4, 9));
        assert!(lazy.leaves_after(0).is_none());
    }

    #[test]
    fn lazy_departures_thin_the_cohort() {
        let model = ChurnModel {
            initial_active: 200,
            arrival_prob: 0.0,
            departure_prob: 0.3,
            dropout_prob: 0.0,
        };
        let lazy = LazyChurn::new(model, 30, 9);
        let active_late = (0..200).filter(|&v| lazy.active_in(v, 29)).count();
        assert!(
            active_late < 100,
            "30 rounds at 30% departure must thin 200 vehicles, kept {active_late}"
        );
        let departed = (0..200)
            .filter(|&v| lazy.leaves_after(v).is_some_and(|l| l < 29))
            .count();
        assert!(departed > 100);
    }
}
