//! Federated clients (vehicles).

use fuiov_data::Dataset;
use fuiov_nn::{ModelSpec, Sequential};
use fuiov_storage::{ClientId, Round};
use fuiov_tensor::rng::{rng_for, streams};
use fuiov_tensor::vector;

/// A federated client: given the current global parameters it computes a
/// local gradient to report to the server.
///
/// Implementations must be `Send` so the server can fan gradient
/// computation out across threads. Malicious clients (label-flip,
/// backdoor, scaling) live in `fuiov-attacks` and wrap an honest client.
pub trait Client: Send {
    /// Stable client identifier.
    fn id(&self) -> ClientId;

    /// FedAvg weight `‖Dᵢ‖` — the local dataset size.
    fn weight(&self) -> f32;

    /// Whether the client answers the server's poll for `round`.
    ///
    /// The churn schedule decides who is *in range*; this hook decides who
    /// actually *uploads*. The server skips non-responding clients before
    /// computing gradients, so they appear in no round record — exactly a
    /// vehicle dropping out mid-round after being polled. Defaults to
    /// always responding; fault-injection wrappers (`fuiov-testkit`)
    /// override it.
    fn responds_in(&self, round: Round) -> bool {
        let _ = round;
        true
    }

    /// Computes the local gradient of the loss at `params` for `round`.
    ///
    /// The returned vector has the model's parameter dimension.
    fn gradient(&mut self, params: &[f32], round: Round) -> Vec<f32>;
}

/// An honest client with a local dataset.
///
/// Each round it evaluates the global model's gradient on a deterministic,
/// per-(client, round) shuffled set of mini-batches and reports the mean —
/// the SGD gradient `gᵗᵢ` of §III-A.
pub struct HonestClient {
    id: ClientId,
    model: Sequential,
    data: Dataset,
    batch_size: usize,
    batches_per_round: Option<usize>,
    seed: u64,
}

impl std::fmt::Debug for HonestClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HonestClient")
            .field("id", &self.id)
            .field("samples", &self.data.len())
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

impl HonestClient {
    /// Creates a client owning `data`, building its model from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `batch_size == 0`.
    pub fn new(id: ClientId, spec: ModelSpec, data: Dataset, batch_size: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "HonestClient: empty dataset");
        assert!(batch_size > 0, "HonestClient: batch_size must be positive");
        HonestClient {
            id,
            model: spec.build(seed),
            data,
            batch_size,
            batches_per_round: None,
            seed,
        }
    }

    /// Limits mini-batches processed per round (speeds up experiments).
    pub fn with_batches_per_round(mut self, n: usize) -> Self {
        self.batches_per_round = Some(n);
        self
    }

    /// Read-only view of the local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Mutable view of the local dataset (used by attack wrappers to
    /// poison samples in place).
    pub fn data_mut(&mut self) -> &mut Dataset {
        &mut self.data
    }
}

impl Client for HonestClient {
    fn id(&self) -> ClientId {
        self.id
    }

    fn weight(&self) -> f32 {
        self.data.len() as f32
    }

    fn gradient(&mut self, params: &[f32], round: Round) -> Vec<f32> {
        self.model.set_params(params);
        let mut rng = rng_for(
            self.seed,
            streams::CLIENT + self.id as u64 * 131 + round as u64,
        );
        let mut batches = self.data.batches(self.batch_size, &mut rng);
        if let Some(limit) = self.batches_per_round {
            batches.truncate(limit.max(1));
        }
        let dim = self.model.param_count();
        let mut acc = vec![0.0f32; dim];
        let used = batches.len().max(1);
        for batch in &batches {
            let (x, y) = self.data.gather(batch);
            let (_, grad) = self.model.loss_and_grad(&x, &y);
            vector::axpy(1.0, &grad, &mut acc);
        }
        vector::scale(1.0 / used as f32, &mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;

    fn client(id: ClientId) -> HonestClient {
        let data = Dataset::digits(20, &DigitStyle::small(), 3);
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        HonestClient::new(id, spec, data, 10, 7)
    }

    #[test]
    fn gradient_has_model_dimension() {
        let mut c = client(0);
        let dim = c.model.param_count();
        let params = vec![0.0; dim];
        let g = c.gradient(&params, 0);
        assert_eq!(g.len(), dim);
        assert!(vector::l2_norm(&g) > 0.0, "gradient should be non-zero");
    }

    #[test]
    fn gradient_is_deterministic_per_round() {
        let mut a = client(1);
        let mut b = client(1);
        let params = vec![0.01; a.model.param_count()];
        assert_eq!(a.gradient(&params, 5), b.gradient(&params, 5));
    }

    #[test]
    fn gradient_varies_across_rounds() {
        let mut c = client(2);
        let params = vec![0.01; c.model.param_count()];
        let g0 = c.gradient(&params, 0);
        let g1 = c.gradient(&params, 1);
        // Different shuffles → different mini-batch ordering; with a batch
        // limit the gradients differ.
        let mut c2 = client(2).with_batches_per_round(1);
        let h0 = c2.gradient(&params, 0);
        let h1 = c2.gradient(&params, 1);
        assert_ne!(h0, h1);
        // Full-epoch gradients are the same data either way.
        assert!(vector::l2_distance(&g0, &g1) < 1e-5);
    }

    #[test]
    fn weight_is_dataset_size() {
        let c = client(3);
        assert_eq!(c.weight(), 20.0);
    }

    #[test]
    fn descending_own_gradient_reduces_loss() {
        let mut c = client(4);
        let mut params = c.model.params();
        let (x, y) = c.data.full();
        let mut probe = c.model.clone();
        probe.set_params(&params);
        let (loss_before, _) = probe.loss_and_grad(&x, &y);
        for round in 0..30 {
            let g = c.gradient(&params, round);
            vector::axpy(-0.5, &g, &mut params);
        }
        probe.set_params(&params);
        let (loss_after, _) = probe.loss_and_grad(&x, &y);
        assert!(
            loss_after < loss_before,
            "loss should drop: {loss_before} -> {loss_after}"
        );
    }
}
