//! Differential-privacy client wrapper (DP-SGD style).
//!
//! §III-B notes that storing client gradients invites reconstruction
//! attacks — the paper's answer is to store only directions. A
//! complementary client-side defence is to clip and noise the gradient
//! *before* it ever reaches the RSU (Abadi et al.'s DP-SGD recipe). This
//! wrapper composes with any [`Client`], letting the experiments measure
//! how DP noise interacts with sign storage and recovery.

use crate::client::Client;
use fuiov_storage::{ClientId, Round};
use fuiov_tensor::rng::{rng_for, streams};
use fuiov_tensor::vector;
use rand::Rng;

/// Clips the gradient to an L2 bound, then adds Gaussian noise
/// `𝒩(0, (σ·bound)²)` per element.
pub struct DpClient<C> {
    inner: C,
    clip_norm: f32,
    noise_multiplier: f32,
    seed: u64,
}

impl<C: Client> DpClient<C> {
    /// Wraps `inner` with an L2 clip bound and a noise multiplier σ
    /// (noise std-dev = `σ · clip_norm`, the DP-SGD convention).
    ///
    /// # Panics
    ///
    /// Panics if `clip_norm` is not strictly positive or
    /// `noise_multiplier` is negative.
    pub fn new(inner: C, clip_norm: f32, noise_multiplier: f32, seed: u64) -> Self {
        assert!(
            clip_norm > 0.0 && clip_norm.is_finite(),
            "DpClient: invalid clip norm"
        );
        assert!(
            noise_multiplier >= 0.0,
            "DpClient: negative noise multiplier"
        );
        DpClient {
            inner,
            clip_norm,
            noise_multiplier,
            seed,
        }
    }

    /// The clip bound in force.
    pub fn clip_norm(&self) -> f32 {
        self.clip_norm
    }
}

impl<C: Client> std::fmt::Debug for DpClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpClient")
            .field("id", &self.inner.id())
            .field("clip_norm", &self.clip_norm)
            .field("noise_multiplier", &self.noise_multiplier)
            .finish()
    }
}

impl<C: Client> Client for DpClient<C> {
    fn id(&self) -> ClientId {
        self.inner.id()
    }

    fn weight(&self) -> f32 {
        self.inner.weight()
    }

    fn gradient(&mut self, params: &[f32], round: Round) -> Vec<f32> {
        let mut g = self.inner.gradient(params, round);
        vector::clip_l2(&mut g, self.clip_norm);
        if self.noise_multiplier > 0.0 {
            let sigma = self.noise_multiplier * self.clip_norm;
            let mut rng = rng_for(
                self.seed,
                streams::CLIENT + 0xD9 + self.inner.id() as u64 * 977 + round as u64,
            );
            for v in &mut g {
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                *v += sigma * z;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HonestClient;
    use fuiov_data::{Dataset, DigitStyle};
    use fuiov_nn::ModelSpec;

    const SPEC: ModelSpec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 8,
        classes: 10,
    };

    fn honest(id: ClientId) -> HonestClient {
        let data = Dataset::digits(20, &DigitStyle::small(), 3);
        HonestClient::new(id, SPEC, data, 20, 3)
    }

    #[test]
    fn clip_bounds_reported_norm_without_noise() {
        let mut dp = DpClient::new(honest(0), 0.01, 0.0, 1);
        let params = vec![0.0; SPEC.param_count()];
        let g = dp.gradient(&params, 0);
        assert!(vector::l2_norm(&g) <= 0.01 + 1e-6);
    }

    #[test]
    fn noise_perturbs_deterministically() {
        let params = vec![0.0; SPEC.param_count()];
        let mut a = DpClient::new(honest(1), 1.0, 0.1, 7);
        let mut b = DpClient::new(honest(1), 1.0, 0.1, 7);
        let mut c = DpClient::new(honest(1), 1.0, 0.1, 8);
        let ga = a.gradient(&params, 0);
        assert_eq!(ga, b.gradient(&params, 0));
        assert_ne!(ga, c.gradient(&params, 0));
        // And differs from the clean clipped gradient.
        let mut clean = DpClient::new(honest(1), 1.0, 0.0, 7);
        assert_ne!(ga, clean.gradient(&params, 0));
    }

    #[test]
    fn noise_varies_across_rounds() {
        let params = vec![0.0; SPEC.param_count()];
        let mut dp = DpClient::new(honest(2), 1.0, 0.5, 7);
        let g0 = dp.gradient(&params, 0);
        let g1 = dp.gradient(&params, 1);
        assert_ne!(g0, g1);
    }

    #[test]
    fn metadata_passthrough() {
        let dp = DpClient::new(honest(5), 1.0, 0.1, 0);
        assert_eq!(dp.id(), 5);
        assert_eq!(dp.weight(), 20.0);
        assert_eq!(dp.clip_norm(), 1.0);
        assert!(format!("{dp:?}").contains("clip_norm"));
    }

    #[test]
    fn signs_survive_mild_dp_noise_mostly() {
        // The paper stores directions; mild DP noise flips few of them on
        // large-magnitude coordinates. Sanity-check the interaction.
        let params = vec![0.01; SPEC.param_count()];
        let mut clean = honest(3);
        let g_clean = clean.gradient(&params, 0);
        // σ = 1e-5 · 10 = 1e-4, an order below the 1e-3 sign threshold.
        let mut dp = DpClient::new(honest(3), 10.0, 1e-5, 5);
        let g_dp = dp.gradient(&params, 0);
        let s_clean = vector::sign_with_threshold(&g_clean, 1e-3);
        let s_dp = vector::sign_with_threshold(&g_dp, 1e-3);
        let agree = vector::sign_agreement(&s_clean, &s_dp) as f32 / s_clean.len() as f32;
        assert!(
            agree > 0.5,
            "mild noise should preserve most informative signs: {agree}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid clip norm")]
    fn rejects_zero_clip() {
        let _ = DpClient::new(honest(0), 0.0, 0.1, 0);
    }
}
