//! Byzantine-Robust Stochastic Aggregation (RSA) training — the paper's
//! §III-C preliminary (Li et al., AAAI 2019).
//!
//! RSA is the scheme whose sign-based communication inspired the paper's
//! storage format. Unlike FedAvg, every client keeps a *personal* model
//! `mᵢ` and the server keeps `m₀`; each round (Eq. 3–4):
//!
//! ```text
//! m₀ ← m₀ − η (∇f₀(m₀) + λ Σᵢ sign(m₀ − mᵢ))
//! mᵢ ← mᵢ − η (∇L(mᵢ, ξᵢ) + λ sign(mᵢ − m₀))
//! ```
//!
//! The ℓ₁ penalty ties the models together through *signs only*, so a
//! Byzantine client's per-round influence on `m₀` is bounded by `±λη` per
//! element no matter what it sends — the robustness property the tests
//! verify.

use crate::client::Client;
use fuiov_tensor::vector;

/// RSA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RsaConfig {
    /// Step size `η` for both server and clients.
    pub lr: f32,
    /// Consensus weight `λ`.
    pub lambda: f32,
    /// Number of rounds.
    pub rounds: usize,
    /// Server regularisation `f₀(m₀) = (wd/2)·‖m₀‖²` coefficient.
    pub weight_decay: f32,
}

impl RsaConfig {
    /// Config with the given step size, `λ = 0.005`, no regularisation.
    ///
    /// # Panics
    ///
    /// Panics if `lr` or derived defaults are not strictly positive.
    pub fn new(lr: f32, rounds: usize) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "RsaConfig: invalid lr");
        assert!(rounds > 0, "RsaConfig: rounds must be positive");
        RsaConfig {
            lr,
            lambda: 0.005,
            rounds,
            weight_decay: 0.0,
        }
    }

    /// Sets the consensus weight λ.
    ///
    /// # Panics
    ///
    /// Panics if not strictly positive.
    pub fn lambda(mut self, lambda: f32) -> Self {
        assert!(lambda > 0.0, "RsaConfig: lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// Sets the server weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "RsaConfig: weight decay must be >= 0");
        self.weight_decay = wd;
        self
    }
}

/// Outcome of an RSA training run.
#[derive(Debug, Clone)]
pub struct RsaOutcome {
    /// Final server model `m₀`.
    pub server_model: Vec<f32>,
    /// Final per-client personal models `mᵢ` (index-aligned with the
    /// client slice).
    pub client_models: Vec<Vec<f32>>,
}

fn sign_of_diff(a: &[f32], b: &[f32]) -> Vec<f32> {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            if d > 0.0 {
                1.0
            } else if d < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Runs RSA training from the given initial model (server and all clients
/// start at `init`).
///
/// # Panics
///
/// Panics if `clients` is empty or a client's gradient dimension doesn't
/// match the model.
pub fn train_rsa(clients: &mut [Box<dyn Client>], init: &[f32], config: &RsaConfig) -> RsaOutcome {
    assert!(!clients.is_empty(), "train_rsa: no clients");
    let dim = init.len();
    let mut m0: Vec<f32> = init.to_vec();
    let mut locals: Vec<Vec<f32>> = vec![init.to_vec(); clients.len()];

    for round in 0..config.rounds {
        // Server update (Eq. 3) from current local models.
        let mut consensus = vec![0.0f32; dim];
        for mi in &locals {
            let s = sign_of_diff(&m0, mi);
            vector::axpy(1.0, &s, &mut consensus);
        }
        let mut server_grad = consensus;
        vector::scale(config.lambda, &mut server_grad);
        if config.weight_decay > 0.0 {
            vector::axpy(config.weight_decay, &m0, &mut server_grad);
        }
        vector::axpy(-config.lr, &server_grad, &mut m0);

        // Client updates (Eq. 4).
        for (client, mi) in clients.iter_mut().zip(&mut locals) {
            let mut grad = client.gradient(mi, round);
            assert_eq!(grad.len(), dim, "train_rsa: gradient dimension mismatch");
            let s = sign_of_diff(mi, &m0);
            vector::axpy(config.lambda, &s, &mut grad);
            vector::axpy(-config.lr, &grad, mi);
        }
    }

    RsaOutcome {
        server_model: m0,
        client_models: locals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HonestClient;
    use fuiov_data::{Dataset, DigitStyle};
    use fuiov_nn::ModelSpec;
    use fuiov_storage::{ClientId, Round};

    const SPEC: ModelSpec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 16,
        classes: 10,
    };

    fn honest_clients(n: usize, seed: u64) -> Vec<Box<dyn Client>> {
        let data = Dataset::digits(n * 30, &DigitStyle::small(), seed);
        let parts = fuiov_data::partition::partition_iid(data.len(), n, seed);
        parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, SPEC, data.subset(&idx), 30, seed))
                    as Box<dyn Client>
            })
            .collect()
    }

    fn accuracy(params: &[f32], seed: u64) -> f32 {
        let test = Dataset::digits(150, &DigitStyle::small(), seed + 100);
        let mut m = SPEC.build(0);
        m.set_params(params);
        fuiov_eval_accuracy(&mut m, &test)
    }

    // Local copy to avoid a dev-dependency cycle with fuiov-eval.
    fn fuiov_eval_accuracy(model: &mut fuiov_nn::Sequential, data: &Dataset) -> f32 {
        let (x, y) = data.full();
        model.accuracy(&x, &y)
    }

    #[test]
    fn rsa_training_improves_server_model() {
        let mut clients = honest_clients(4, 21);
        let init = SPEC.build(21).params();
        let before = accuracy(&init, 21);
        let cfg = RsaConfig::new(0.1, 60).lambda(0.01);
        let out = train_rsa(&mut clients, &init, &cfg);
        let after = accuracy(&out.server_model, 21);
        assert!(
            after > before + 0.1,
            "RSA should learn: {before} -> {after}"
        );
        assert_eq!(out.client_models.len(), 4);
    }

    /// A Byzantine client that reports a huge adversarial gradient.
    struct Byzantine {
        id: ClientId,
    }

    impl Client for Byzantine {
        fn id(&self) -> ClientId {
            self.id
        }
        fn weight(&self) -> f32 {
            1.0
        }
        fn gradient(&mut self, params: &[f32], _round: Round) -> Vec<f32> {
            vec![1e6; params.len()]
        }
    }

    #[test]
    fn rsa_bounds_byzantine_influence() {
        let mut clients = honest_clients(4, 22);
        clients.push(Box::new(Byzantine { id: 4 }));
        let init = SPEC.build(22).params();
        let before = accuracy(&init, 22);
        let cfg = RsaConfig::new(0.1, 60).lambda(0.01);
        let out = train_rsa(&mut clients, &init, &cfg);
        let after = accuracy(&out.server_model, 22);
        assert!(
            after > before + 0.1,
            "RSA should survive the Byzantine client: {before} -> {after}"
        );
        assert!(out.server_model.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fedavg_is_destroyed_by_the_same_byzantine_client() {
        // Contrast experiment: the same attacker wrecks plain FedAvg.
        use crate::aggregate::aggregate;
        use crate::config::AggregationRule;
        let mut clients = honest_clients(4, 23);
        clients.push(Box::new(Byzantine { id: 4 }));
        let mut params = SPEC.build(23).params();
        for round in 0..5 {
            let grads: Vec<Vec<f32>> = clients
                .iter_mut()
                .map(|c| c.gradient(&params, round))
                .collect();
            let weights = vec![1.0f32; grads.len()];
            let agg = aggregate(AggregationRule::FedAvg, &grads, &weights);
            vector::axpy(-0.1, &agg, &mut params);
        }
        // Parameters blown up by the 1e6 gradients.
        assert!(fuiov_tensor::vector::linf_norm(&params) > 1e3);
    }

    #[test]
    fn per_round_server_step_is_bounded_by_lambda_eta_n() {
        let mut clients = honest_clients(3, 24);
        let init = SPEC.build(24).params();
        let cfg = RsaConfig::new(0.05, 1).lambda(0.01);
        let out = train_rsa(&mut clients, &init, &cfg);
        let max_step = out
            .server_model
            .iter()
            .zip(&init)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // |Δm₀| ≤ η·λ·n per element.
        assert!(max_step <= 0.05 * 0.01 * 3.0 + 1e-6, "step {max_step}");
    }
}
