//! Hierarchical RSU/edge aggregation and million-vehicle cohorts.
//!
//! The paper trains n = 100 vehicles against a single RSU; the IoV
//! setting it motivates (§II) is a tree of RSU and edge aggregators over
//! orders of magnitude more vehicles. This module adds that tier without
//! moving the determinism boundary:
//!
//! - [`AggregationTree`] is a fixed-shape reduction tree over the round's
//!   participant list (contiguous ranges, ragged last nodes allowed).
//! - [`aggregate_tree_into`] reduces through the tree with a *threaded*
//!   `f64` accumulator: each node's FedAvg fold is seeded with its left
//!   sibling subtree's accumulator, which makes the whole tree reduction
//!   exactly the flat left-to-right fold of
//!   [`aggregate_refs`](crate::aggregate::aggregate_refs). Tree shape
//!   therefore changes communication and storage layout — never floating
//!   point association, so flat vs tree is bitwise identical at any
//!   fan-out.
//! - [`sampled`]/[`apply_sampling`] implement per-round client sampling
//!   from a seeded hash stream (`FUIOV_SAMPLE_FRAC`). A fraction ≥ 1.0
//!   takes the identical no-filter code path, so golden traces are
//!   untouched unless sampling is explicitly enabled.
//! - [`Cohort`] simulates 10⁵–10⁶ vehicles without materialising
//!   per-vehicle state: lazy churn ([`LazyChurn`]), shared data shards,
//!   and *group-level* sign history — one pseudo-client per RSU leaf in a
//!   [`HistoryStore`] plus sealed [`SubtreeStore`] aggregates — so
//!   history cost scales with tree leaves, not vehicles.

use crate::mobility::{mix64, unit, ChurnModel, LazyChurn};
use fuiov_storage::{ClientId, GradientDirection, HistoryStore, Round, SubtreeStore, TierConfig};
use std::ops::Range;

use crate::aggregate::aggregate_refs_into;
use crate::config::AggregationRule;

/// Seed salt for the sampling stream, disjoint from the `rng::streams`
/// constants used elsewhere (CHURN is `0x0500_0000`).
const SAMPLE_STREAM: u64 = 0x0600_0000;

// ---------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------

/// Pure parsing backend of [`fanout_from_env`]: a fan-out of at least 2
/// enables the tree; `0`, `1`, garbage, or absence disable it (a fan-out
/// of 1 never merges anything, so it is treated as "flat").
pub fn parse_fanout(raw: Option<&str>) -> Option<usize> {
    let v: usize = raw?.trim().parse().ok()?;
    (v >= 2).then_some(v)
}

/// Reads `FUIOV_TREE_FANOUT`. `None` keeps the flat aggregation path.
pub fn fanout_from_env() -> Option<usize> {
    parse_fanout(std::env::var("FUIOV_TREE_FANOUT").ok().as_deref())
}

/// Pure parsing backend of [`sample_frac_from_env`]: a fraction strictly
/// inside `(0, 1)` enables sampling; anything else (absence, garbage,
/// `1.0`, out-of-range) resolves to `1.0` — sample everyone.
pub fn parse_sample_frac(raw: Option<&str>) -> f64 {
    match raw.and_then(|s| s.trim().parse::<f64>().ok()) {
        Some(f) if f > 0.0 && f < 1.0 => f,
        _ => 1.0,
    }
}

/// Reads `FUIOV_SAMPLE_FRAC`. `1.0` keeps the unsampled path.
pub fn sample_frac_from_env() -> f64 {
    parse_sample_frac(std::env::var("FUIOV_SAMPLE_FRAC").ok().as_deref())
}

// ---------------------------------------------------------------------
// Per-round client sampling
// ---------------------------------------------------------------------

/// Whether vehicle `v` is sampled into `round` at fraction `frac`: a
/// seeded per-`(round, vehicle)` hash threshold, O(1) and stateless, so a
/// million-vehicle round never builds a shuffle permutation.
pub fn sampled(seed: u64, round: Round, v: ClientId, frac: f64) -> bool {
    if frac >= 1.0 {
        return true;
    }
    if frac <= 0.0 {
        return false;
    }
    let h = mix64(seed ^ SAMPLE_STREAM ^ mix64(round as u64).rotate_left(23) ^ mix64(v as u64));
    unit(h) < frac
}

/// Filters a round's active set through [`sampled`], counting the
/// vehicles left out on `hierarchy.sampled_out`. A fraction ≥ 1.0
/// returns the input untouched through the identical no-filter path —
/// the golden-trace guarantee for `FUIOV_SAMPLE_FRAC` unset or `1.0`.
pub fn apply_sampling(
    mut active: Vec<ClientId>,
    seed: u64,
    round: Round,
    frac: f64,
) -> Vec<ClientId> {
    if frac >= 1.0 {
        return active;
    }
    let before = active.len();
    active.retain(|&v| sampled(seed, round, v, frac));
    fuiov_obs::counter!("hierarchy.sampled_out").add((before - active.len()) as u64);
    active
}

// ---------------------------------------------------------------------
// The aggregation tree
// ---------------------------------------------------------------------

/// A fixed-shape reduction tree over `n` participants with fan-out `f`:
/// leaf node `i` covers the contiguous participant range
/// `[i·f, min((i+1)·f, n))` (the last node may be ragged, down to a
/// single child), and each upper level groups `f` nodes of the level
/// below until a single root remains. With `n ≤ f` the root is the only
/// node. `n = fᵏ + 1`-style shapes produce single-child chains up the
/// right spine — still bitwise safe, because reduction order is the flat
/// participant order regardless of shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregationTree {
    n: usize,
    fanout: usize,
    level_widths: Vec<usize>,
}

impl AggregationTree {
    /// Builds the tree over `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fanout < 2`.
    pub fn build(n: usize, fanout: usize) -> Self {
        assert!(n > 0, "AggregationTree: no participants");
        assert!(fanout >= 2, "AggregationTree: fanout must be >= 2");
        let mut level_widths = Vec::new();
        let mut w = n.div_ceil(fanout);
        level_widths.push(w);
        while w > 1 {
            w = w.div_ceil(fanout);
            level_widths.push(w);
        }
        AggregationTree {
            n,
            fanout,
            level_widths,
        }
    }

    /// Participants reduced by the tree.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Configured fan-out.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Leaf aggregator count (RSU tier width).
    pub fn leaf_count(&self) -> usize {
        self.level_widths[0]
    }

    /// Total aggregator nodes across all levels.
    pub fn node_count(&self) -> usize {
        self.level_widths.iter().sum()
    }

    /// Number of aggregator levels (leaf tier through root).
    pub fn depth(&self) -> usize {
        self.level_widths.len()
    }

    /// Aggregator-level widths, leaf tier first, root (width 1) last.
    pub fn level_widths(&self) -> &[usize] {
        &self.level_widths
    }

    /// The contiguous participant range of leaf node `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_range(&self, leaf: usize) -> Range<usize> {
        assert!(
            leaf < self.leaf_count(),
            "AggregationTree: leaf out of range"
        );
        leaf * self.fanout..((leaf + 1) * self.fanout).min(self.n)
    }

    /// Leaf participant ranges in ascending order.
    pub fn leaves(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.leaf_count()).map(|leaf| self.leaf_range(leaf))
    }

    /// The leaf node a participant index reduces through.
    pub fn leaf_of(&self, participant: usize) -> usize {
        participant / self.fanout
    }
}

/// Tree-shaped [`aggregate_refs_into`](crate::aggregate::aggregate_refs_into):
/// bitwise identical output, `hierarchy.nodes_reduced` counts the nodes.
///
/// FedAvg reduces through the tree with the threaded accumulator (see the
/// module docs); the robust rules (median, trimmed mean, SignSGD) are
/// order-statistic computations that cannot be decomposed per subtree, so
/// the tree degrades to forwarding raw gradients and the reduction runs
/// flat at the root — identical by construction.
///
/// # Panics
///
/// Panics if `tree.participants() != grads.len()` or on the aggregation
/// preconditions of [`aggregate_refs`](crate::aggregate::aggregate_refs).
pub fn aggregate_tree_into(
    rule: AggregationRule,
    grads: &[&[f32]],
    weights: &[f32],
    tree: &AggregationTree,
    acc: &mut Vec<f64>,
    out: &mut Vec<f32>,
) {
    assert_eq!(
        tree.participants(),
        grads.len(),
        "aggregate_tree: tree shape does not match participant count"
    );
    assert!(!grads.is_empty(), "aggregate: no gradients");
    assert_eq!(
        grads.len(),
        weights.len(),
        "aggregate: weight count mismatch"
    );
    match rule {
        AggregationRule::FedAvg => {
            let dim = grads[0].len();
            let total: f64 = weights.iter().map(|w| f64::from(*w)).sum();
            assert!(total != 0.0, "weighted_mean: weights sum to zero");
            acc.clear();
            acc.resize(dim, 0.0);
            // Per-node reduction with the accumulator threaded through in
            // ascending participant order — exactly the flat left fold.
            for leaf in tree.leaves() {
                for i in leaf {
                    let (v, w) = (grads[i], weights[i]);
                    assert_eq!(v.len(), dim, "weighted_mean: length mismatch");
                    for (a, &x) in acc.iter_mut().zip(v) {
                        *a += f64::from(w) * f64::from(x);
                    }
                }
            }
            out.clear();
            out.extend(acc.iter().map(|a| (a / total) as f32));
        }
        _ => aggregate_refs_into(rule, grads, weights, acc, out),
    }
    fuiov_obs::counter!("hierarchy.nodes_reduced").add(tree.node_count() as u64);
}

/// Allocating wrapper over [`aggregate_tree_into`].
pub fn aggregate_tree(
    rule: AggregationRule,
    grads: &[&[f32]],
    weights: &[f32],
    tree: &AggregationTree,
) -> Vec<f32> {
    let mut acc = Vec::new();
    let mut out = Vec::new();
    aggregate_tree_into(rule, grads, weights, tree, &mut acc, &mut out);
    out
}

// ---------------------------------------------------------------------
// Million-vehicle cohorts
// ---------------------------------------------------------------------

/// Configuration of a simulated RSU/edge cohort.
#[derive(Debug, Clone)]
pub struct CohortConfig {
    /// Simulated vehicle count (10⁵–10⁶ is the design point).
    pub n_vehicles: usize,
    /// Vehicles per RSU leaf aggregator.
    pub group_size: usize,
    /// Fan-out of the edge tiers above the RSU leaves.
    pub fanout: usize,
    /// Shared data shards: vehicle `v` trains on shard `v % n_shards`,
    /// so per-round gradient state is `n_shards × dim`, not
    /// `n_vehicles × dim`.
    pub n_shards: usize,
    /// Model dimension.
    pub dim: usize,
    /// Training rounds.
    pub rounds: usize,
    /// Server learning rate.
    pub lr: f32,
    /// Sign-quantisation dead zone for the group history.
    pub sign_delta: f32,
    /// Master seed (churn + sampling streams).
    pub seed: u64,
    /// Per-round sampling fraction (`1.0` = everyone).
    pub sample_frac: f64,
    /// Churn process; `None` keeps every vehicle active every round.
    pub churn: Option<ChurnModel>,
    /// History tier budget for the group store; `None` reads the env.
    pub tier: Option<TierConfig>,
}

impl CohortConfig {
    /// Defaults sized for smoke tests; scale `n_vehicles` up from here.
    pub fn new(n_vehicles: usize) -> Self {
        CohortConfig {
            n_vehicles,
            group_size: 1024,
            fanout: 8,
            n_shards: 64,
            dim: 64,
            rounds: 8,
            lr: 0.05,
            sign_delta: 1e-6,
            seed: 1,
            sample_frac: 1.0,
            churn: None,
            tier: None,
        }
    }

    /// Sets the RSU group size.
    pub fn group_size(mut self, group_size: usize) -> Self {
        assert!(group_size > 0, "CohortConfig: group_size must be > 0");
        self.group_size = group_size;
        self
    }

    /// Sets the edge-tier fan-out.
    pub fn fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the shared shard count.
    pub fn shards(mut self, n_shards: usize) -> Self {
        assert!(n_shards > 0, "CohortConfig: n_shards must be > 0");
        self.n_shards = n_shards;
        self
    }

    /// Sets the model dimension.
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Sets the round count.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling fraction.
    pub fn sample_frac(mut self, frac: f64) -> Self {
        self.sample_frac = frac;
        self
    }

    /// Enables churn.
    pub fn churn(mut self, model: ChurnModel) -> Self {
        self.churn = Some(model);
        self
    }

    /// Pins the group history's tier budget.
    pub fn tier(mut self, tier: TierConfig) -> Self {
        self.tier = Some(tier);
        self
    }

    /// RSU leaf count.
    pub fn leaf_count(&self) -> usize {
        self.n_vehicles.div_ceil(self.group_size)
    }

    /// The RSU leaf vehicle `v` reports to.
    pub fn leaf_of(&self, v: ClientId) -> usize {
        v / self.group_size
    }

    /// The vehicle range of RSU leaf `leaf`.
    pub fn leaf_vehicles(&self, leaf: usize) -> Range<ClientId> {
        leaf * self.group_size..((leaf + 1) * self.group_size).min(self.n_vehicles)
    }

    /// A vehicle's static FedAvg weight: quarter-integer steps in
    /// `{1.0, 1.25, 1.5, 1.75}` — heterogeneous but exactly
    /// representable, so weight sums are reproducible across platforms.
    pub fn weight_of(v: ClientId) -> f32 {
        1.0 + 0.25 * (v % 4) as f32
    }

    /// Full-membership weight of a leaf (every vehicle present).
    pub fn full_leaf_weight(&self, leaf: usize) -> f64 {
        self.leaf_vehicles(leaf)
            .map(|v| f64::from(Self::weight_of(v)))
            .sum()
    }
}

/// Everything the smoke tests and the scale experiment need to forget a
/// vehicle out of a finished cohort: its leaf, the replay window start,
/// and the leaf's reweighting after removal.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleForget {
    /// The forgotten vehicle.
    pub vehicle: ClientId,
    /// The RSU leaf (group-history pseudo-client) it reduced through.
    pub leaf: ClientId,
    /// The vehicle's join round — where subtree replay backtracks to.
    pub join_round: Round,
    /// The vehicle's own FedAvg weight.
    pub weight: f32,
    /// The leaf's weight with the vehicle removed.
    pub reduced_leaf_weight: f32,
    /// Whether the vehicle was its leaf's only member — then the whole
    /// leaf disappears instead of being reweighted.
    pub singleton: bool,
}

/// A finished cohort run: final model, group-level history, sealed
/// subtree aggregates, and the resource trace the scale tests pin.
#[derive(Debug)]
pub struct CohortRun {
    /// The configuration that produced the run.
    pub cfg: CohortConfig,
    /// Final global model.
    pub params: Vec<f32>,
    /// Group-level history: one pseudo-client per RSU leaf.
    pub history: HistoryStore,
    /// Sealed per-round leaf aggregates.
    pub subtrees: SubtreeStore,
    /// Peak resident bytes across the run (params + shard gradients +
    /// accumulators + history + subtree index).
    pub peak_resident_bytes: usize,
    /// Total vehicle-round participations.
    pub participant_rounds: u64,
    /// Run-total byte accounting, computed per round from the vehicles
    /// that *actually* participated (churn- and sampling-filtered) via
    /// [`crate::comms::cohort_round_bytes`] — never from the full cohort.
    pub tier_bytes: crate::comms::TierBytes,
}

impl CohortRun {
    /// The lazy churn process of the run (same seed/model/horizon).
    pub fn lazy_churn(&self) -> Option<LazyChurn> {
        self.cfg
            .churn
            .map(|m| LazyChurn::new(m, self.cfg.rounds, self.cfg.seed))
    }

    /// Builds the forget spec for vehicle `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn forget_spec(&self, v: ClientId) -> VehicleForget {
        assert!(v < self.cfg.n_vehicles, "forget_spec: vehicle out of range");
        let leaf = self.cfg.leaf_of(v);
        let join_round = self.lazy_churn().map_or(0, |lazy| lazy.joined(v));
        let weight = CohortConfig::weight_of(v);
        let full = self.cfg.full_leaf_weight(leaf);
        let singleton = self.cfg.leaf_vehicles(leaf).len() == 1;
        VehicleForget {
            vehicle: v,
            leaf,
            join_round,
            weight,
            reduced_leaf_weight: (full - f64::from(weight)) as f32,
            singleton,
        }
    }
}

/// Deterministic pseudo-target of shard `s`, coordinate `j`.
fn shard_target(s: usize, j: usize) -> f32 {
    (mix64((s as u64) << 32 | j as u64) % 1000) as f32 / 500.0 - 1.0
}

/// Runs a full cohort simulation.
///
/// Per round, each shard's gradient pulls the model toward the shard
/// target with a period-3 sign oscillation layered on top (the 2-bit
/// history keeps signs only; without per-round flips every recovery
/// L-BFGS pair would collapse to `Δg = 0`). The global FedAvg fold
/// threads one `f64` accumulator across leaves in ascending vehicle
/// order — the same bitwise discipline as [`aggregate_tree_into`] —
/// while each leaf folds its own accumulator for the group history and
/// the sealed subtree record.
pub fn run_cohort(cfg: CohortConfig) -> CohortRun {
    assert!(cfg.n_vehicles > 0, "run_cohort: no vehicles");
    assert!(cfg.dim > 0, "run_cohort: zero dim");
    let lazy = cfg.churn.map(|m| LazyChurn::new(m, cfg.rounds, cfg.seed));
    let leaf_count = cfg.leaf_count();
    let edge_tree = (leaf_count > 1).then(|| AggregationTree::build(leaf_count, cfg.fanout.max(2)));

    let mut history = match cfg.tier {
        Some(tier) => HistoryStore::with_tier(cfg.sign_delta, tier),
        None => HistoryStore::new(cfg.sign_delta),
    };
    let mut subtrees = SubtreeStore::new();
    for leaf in 0..leaf_count {
        history.set_weight(leaf, cfg.full_leaf_weight(leaf) as f32);
    }

    let mut params = vec![0.0f32; cfg.dim];
    let mut shard_grads: Vec<Vec<f32>> = vec![vec![0.0; cfg.dim]; cfg.n_shards];
    let mut global_acc = vec![0.0f64; cfg.dim];
    let mut leaf_acc = vec![0.0f64; cfg.dim];
    let mut leaf_mean = vec![0.0f32; cfg.dim];
    let mut peak = 0usize;
    let mut participant_rounds = 0u64;
    let mut tier_bytes = crate::comms::TierBytes::default();
    let edge_nodes = edge_tree.as_ref().map_or(0, AggregationTree::node_count);

    for t in 0..cfg.rounds {
        history.record_model(t, params.clone());
        for (s, g) in shard_grads.iter_mut().enumerate() {
            for (j, gj) in g.iter_mut().enumerate() {
                let osc = if (t + j) % 3 < 2 { 0.5f32 } else { -0.5 };
                *gj = (params[j] - shard_target(s, j)) * 0.1 + osc;
            }
        }
        global_acc.iter_mut().for_each(|a| *a = 0.0);
        let mut total_w = 0.0f64;
        let mut round_participants = 0u64;
        let mut sampled_out = 0u64;
        let mut active_leaves = 0usize;
        for leaf in 0..leaf_count {
            leaf_acc.iter_mut().for_each(|a| *a = 0.0);
            let mut leaf_w = 0.0f64;
            let mut leaf_members = 0u64;
            for v in cfg.leaf_vehicles(leaf) {
                if lazy.as_ref().is_some_and(|l| !l.active_in(v, t)) {
                    continue;
                }
                if !sampled(cfg.seed, t, v, cfg.sample_frac) {
                    sampled_out += 1;
                    continue;
                }
                let w = CohortConfig::weight_of(v);
                let g = &shard_grads[v % cfg.n_shards];
                // Threaded global fold (ascending vehicle order) plus the
                // leaf's own fold for its sealed aggregate.
                for ((ga, la), &x) in global_acc.iter_mut().zip(leaf_acc.iter_mut()).zip(g) {
                    let wx = f64::from(w) * f64::from(x);
                    *ga += wx;
                    *la += wx;
                }
                total_w += f64::from(w);
                leaf_w += f64::from(w);
                leaf_members += 1;
            }
            if leaf_members > 0 {
                leaf_mean.clear();
                leaf_mean.extend(leaf_acc.iter().map(|a| (a / leaf_w) as f32));
                let dir = GradientDirection::quantize(&leaf_mean, cfg.sign_delta);
                history.record_join(leaf, t);
                history.record_direction(t, leaf, dir.clone());
                subtrees
                    .seal(t, leaf as u64, leaf_w as f32, &dir)
                    .expect("subtree seal");
                round_participants += leaf_members;
                active_leaves += 1;
            }
        }
        if total_w > 0.0 {
            let lr = cfg.lr;
            for (p, a) in params.iter_mut().zip(&global_acc) {
                *p -= lr * (*a / total_w) as f32;
            }
        }
        participant_rounds += round_participants;
        let nodes = leaf_count + edge_nodes;
        fuiov_obs::counter!("hierarchy.nodes_reduced").add(nodes as u64);
        fuiov_obs::counter!("hierarchy.sampled_out").add(sampled_out);
        let tb = crate::comms::cohort_round_bytes(
            cfg.dim,
            round_participants as usize,
            active_leaves,
            edge_nodes,
        );
        tier_bytes.accumulate(&tb);
        fuiov_obs::counter!("hierarchy.bytes_down_vehicle").add(tb.down_vehicle as u64);
        fuiov_obs::counter!("hierarchy.bytes_up_vehicle_sign").add(tb.up_vehicle_sign as u64);
        fuiov_obs::counter!("hierarchy.bytes_down_inter").add(tb.down_inter as u64);
        fuiov_obs::counter!("hierarchy.bytes_up_inter_full").add(tb.up_inter_full as u64);
        let resident = (params.len() + leaf_mean.capacity()) * 4
            + shard_grads.iter().map(|g| g.len() * 4).sum::<usize>()
            + (global_acc.len() + leaf_acc.len()) * 8
            + history.resident_bytes()
            + subtrees.resident_bytes();
        peak = peak.max(resident);
    }
    history.record_model(cfg.rounds, params.clone());

    CohortRun {
        cfg,
        params,
        history,
        subtrees,
        peak_resident_bytes: peak,
        participant_rounds,
        tier_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_refs;

    fn grads(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 31 + j * 7) % 13) as f32 / 3.0 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tree_shapes() {
        let t = AggregationTree::build(4, 2);
        assert_eq!(t.level_widths(), &[2, 1]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.leaf_range(0), 0..2);
        assert_eq!(t.leaf_range(1), 2..4);
        // Ragged: 5 participants at fan-out 4 → a single-child last leaf.
        let t = AggregationTree::build(5, 4);
        assert_eq!(t.level_widths(), &[2, 1]);
        assert_eq!(t.leaf_range(1), 4..5);
        // n <= fanout: the root is the only node.
        let t = AggregationTree::build(3, 8);
        assert_eq!(t.level_widths(), &[1]);
        assert_eq!(t.node_count(), 1);
        // Right-spine chain: 9 = 2³ + 1 at fan-out 2.
        let t = AggregationTree::build(9, 2);
        assert_eq!(t.level_widths(), &[5, 3, 2, 1]);
        assert_eq!(t.leaf_of(8), 4);
    }

    #[test]
    fn tree_aggregation_is_bitwise_flat_for_fedavg() {
        let gs = grads(11, 7);
        let refs: Vec<&[f32]> = gs.iter().map(Vec::as_slice).collect();
        let weights: Vec<f32> = (0..11).map(|i| 1.0 + 0.25 * (i % 4) as f32).collect();
        let flat = aggregate_refs(AggregationRule::FedAvg, &refs, &weights);
        for fanout in 2..=12 {
            let tree = AggregationTree::build(refs.len(), fanout);
            let out = aggregate_tree(AggregationRule::FedAvg, &refs, &weights, &tree);
            let a: Vec<u32> = flat.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "fanout {fanout} broke bitwise identity");
        }
    }

    #[test]
    fn tree_aggregation_matches_flat_for_robust_rules() {
        let gs = grads(9, 5);
        let refs: Vec<&[f32]> = gs.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; 9];
        let tree = AggregationTree::build(9, 3);
        for rule in [
            AggregationRule::CoordinateMedian,
            AggregationRule::TrimmedMean { trim: 2 },
            AggregationRule::SignSgd { lambda: 0.1 },
        ] {
            let flat = aggregate_refs(rule, &refs, &weights);
            let out = aggregate_tree(rule, &refs, &weights, &tree);
            assert_eq!(flat, out, "{rule:?}");
        }
    }

    #[test]
    fn knob_parsing() {
        assert_eq!(parse_fanout(None), None);
        assert_eq!(parse_fanout(Some("0")), None);
        assert_eq!(parse_fanout(Some("1")), None);
        assert_eq!(parse_fanout(Some("2")), Some(2));
        assert_eq!(parse_fanout(Some(" 16 ")), Some(16));
        assert_eq!(parse_fanout(Some("wide")), None);
        assert_eq!(parse_sample_frac(None), 1.0);
        assert_eq!(parse_sample_frac(Some("1.0")), 1.0);
        assert_eq!(parse_sample_frac(Some("0.25")), 0.25);
        assert_eq!(parse_sample_frac(Some("-0.5")), 1.0);
        assert_eq!(parse_sample_frac(Some("2.5")), 1.0);
        assert_eq!(parse_sample_frac(Some("nope")), 1.0);
    }

    #[test]
    fn sampling_full_fraction_is_the_identity() {
        let active: Vec<ClientId> = (0..100).collect();
        assert_eq!(apply_sampling(active.clone(), 7, 3, 1.0), active);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let active: Vec<ClientId> = (0..2000).collect();
        let a = apply_sampling(active.clone(), 7, 3, 0.3);
        let b = apply_sampling(active.clone(), 7, 3, 0.3);
        assert_eq!(a, b);
        assert!(
            a.len() > 400 && a.len() < 800,
            "expected ~600 of 2000 sampled, got {}",
            a.len()
        );
        let c = apply_sampling(active, 7, 4, 0.3);
        assert_ne!(a, c, "a different round must resample");
    }

    #[test]
    fn cohort_run_scales_history_with_leaves_not_vehicles() {
        let cfg = CohortConfig::new(4096)
            .group_size(512)
            .dim(16)
            .rounds(4)
            .shards(8);
        let run = run_cohort(cfg);
        assert_eq!(run.cfg.leaf_count(), 8);
        let clients = run.history.clients();
        assert_eq!(clients.len(), 8, "one pseudo-client per leaf");
        assert_eq!(run.participant_rounds, 4 * 4096);
        for t in 0..4 {
            assert_eq!(run.history.clients_in_round(t).len(), 8);
            for leaf in 0..8u64 {
                assert!(run.subtrees.contains(t, leaf), "round {t} leaf {leaf}");
            }
        }
        assert!(run.history.model(4).is_some());
    }

    #[test]
    fn cohort_forget_spec_reweights_the_leaf() {
        let run = run_cohort(CohortConfig::new(64).group_size(16).dim(4).rounds(2));
        let spec = run.forget_spec(21);
        assert_eq!(spec.leaf, 1);
        assert_eq!(spec.join_round, 0, "no churn: everyone joins at 0");
        assert!(!spec.singleton);
        let full = run.cfg.full_leaf_weight(1) as f32;
        assert!((full - spec.reduced_leaf_weight - spec.weight).abs() < 1e-6);
        let single = run_cohort(CohortConfig::new(1).group_size(1).dim(4).rounds(2));
        assert!(single.forget_spec(0).singleton);
    }

    #[test]
    fn cohort_is_deterministic() {
        let cfg = CohortConfig::new(256).group_size(64).dim(8).rounds(3);
        let a = run_cohort(cfg.clone());
        let b = run_cohort(cfg);
        assert_eq!(a.params, b.params);
        assert_eq!(a.participant_rounds, b.participant_rounds);
    }

    #[test]
    fn cohort_sampling_and_churn_thin_participation() {
        let base = CohortConfig::new(512).group_size(64).dim(8).rounds(4);
        let full = run_cohort(base.clone());
        let sampled = run_cohort(base.clone().sample_frac(0.5).seed(9));
        assert!(sampled.participant_rounds < full.participant_rounds);
        let churned = run_cohort(base.churn(ChurnModel {
            initial_active: 256,
            arrival_prob: 0.05,
            departure_prob: 0.02,
            dropout_prob: 0.1,
        }));
        assert!(churned.participant_rounds < full.participant_rounds);
    }

    #[test]
    fn cohort_byte_accounting_counts_the_sampled_set() {
        use crate::comms::cohort_round_bytes;
        let dim = 8usize;
        let base = CohortConfig::new(512).group_size(64).dim(dim).rounds(4);

        // Unsampled, no churn: every vehicle participates every round and
        // the totals are exactly `rounds ×` the static per-round figure.
        let full = run_cohort(base.clone());
        let leaf_count = base.leaf_count();
        let edge_nodes = AggregationTree::build(leaf_count, base.fanout).node_count();
        let per_round = cohort_round_bytes(dim, 512, leaf_count, edge_nodes);
        assert_eq!(full.tier_bytes.down_vehicle, 4 * per_round.down_vehicle);
        assert_eq!(
            full.tier_bytes.up_vehicle_sign,
            4 * per_round.up_vehicle_sign
        );
        assert_eq!(full.tier_bytes.down_inter, 4 * per_round.down_inter);

        // Sampled: the vehicle-tier bytes must reconcile with the rounds
        // that actually happened (`participant_rounds`), NOT with the
        // full cohort — the regression this test pins.
        let sampled = run_cohort(base.sample_frac(0.5).seed(9));
        assert_eq!(
            sampled.tier_bytes.down_vehicle as u64,
            sampled.participant_rounds * 4 * dim as u64
        );
        assert_eq!(
            sampled.tier_bytes.up_vehicle_sign as u64,
            sampled.participant_rounds * dim.div_ceil(4) as u64
        );
        assert!(
            sampled.tier_bytes.down_vehicle < full.tier_bytes.down_vehicle,
            "sampling must shrink the accounted vehicle tier"
        );
        assert!(sampled.tier_bytes.up_inter_full <= full.tier_bytes.up_inter_full);
    }

    #[test]
    fn cohort_round_bytes_vehicle_tier_matches_flat_accounting() {
        use crate::comms::{cohort_round_bytes, round_bytes};
        // The vehicle-tier columns are the same quantities round_bytes
        // reports for the sampled participant count.
        let (down, _, up_sign) = round_bytes(100, 37);
        let tb = cohort_round_bytes(100, 37, 5, 7);
        assert_eq!(tb.down_vehicle, down);
        assert_eq!(tb.up_vehicle_sign, up_sign);
        // 5 active leaves + 6 non-root edge nodes = 11 inter links.
        assert_eq!(tb.down_inter, 11 * 400);
        assert_eq!(tb.up_inter_full, 11 * 400);
        // Single-leaf cohorts have no backhaul.
        assert_eq!(cohort_round_bytes(100, 37, 1, 0).down_inter, 0);
    }
}
