//! The RSU-side federated server.
//!
//! Runs the §III-A training loop: each round, active vehicles download the
//! global parameters, compute local gradients, and the server aggregates
//! (Eq. 1) and steps the model (Eq. 2). Along the way the server records
//! the history the unlearning pipeline needs: per-round global models,
//! per-client gradient *directions* (2-bit packed, threshold δ), join
//! rounds and FedAvg weights.

use crate::aggregate::aggregate_refs_into;
use crate::client::Client;
use crate::config::FlConfig;
use crate::hierarchy::{self, AggregationTree};
use crate::mobility::ChurnSchedule;
use fuiov_storage::history::FullGradientStore;
use fuiov_storage::{ClientId, HistoryStore, Round};
use fuiov_tensor::rng::{rng_for, streams};
use fuiov_tensor::vector;
use parking_lot::Mutex;
use rand::seq::SliceRandom;

/// Summary of one training round.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    /// The round index.
    pub round: Round,
    /// Clients that submitted gradients.
    pub participants: Vec<ClientId>,
    /// L2 norm of the aggregated update (0 when no one participated).
    pub update_norm: f32,
}

/// One client's round contribution, as delivered by a transport.
///
/// This is the seam between round *arithmetic* and round *delivery*: the
/// in-process path builds uploads by calling [`Client::gradient`]
/// directly, the networked path (`fuiov-net`) decodes them off the wire.
/// Both feed [`Server::run_round_uploads`], so the two transports share
/// every aggregation instruction by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Upload {
    /// The uploading vehicle.
    pub client: ClientId,
    /// Its FedAvg weight `‖Dᵢ‖`.
    pub weight: f32,
    /// The local gradient at the round's broadcast parameters.
    pub grad: Vec<f32>,
}

/// One queued request to unlearn a set of vehicles, stamped with the
/// round it arrived in. The server only *queues* these — actually
/// recovering the model is `core::jobs`' business (the `fuiov-core` crate
/// sits above this one), so a driver drains the queue into a job service
/// via [`Server::drain_forget_requests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForgetRequest {
    /// The vehicles to forget (deduplicated, ascending).
    pub clients: Vec<ClientId>,
    /// Training round at which the request was accepted.
    pub round: Round,
}

/// The federated server.
#[derive(Debug)]
pub struct Server {
    cfg: FlConfig,
    params: Vec<f32>,
    round: Round,
    history: HistoryStore,
    full_store: FullGradientStore,
    summaries: Vec<RoundSummary>,
    sampling_seed: u64,
    forget_requests: Vec<ForgetRequest>,
    tree_fanout: Option<usize>,
    sample_frac: f64,
    agg_acc: Vec<f64>,
    agg_out: Vec<f32>,
}

impl Server {
    /// Creates a server starting from the given initial global parameters.
    ///
    /// # Panics
    ///
    /// Panics if `initial_params` is empty.
    pub fn new(cfg: FlConfig, initial_params: Vec<f32>) -> Self {
        assert!(
            !initial_params.is_empty(),
            "Server::new: empty parameter vector"
        );
        let history = HistoryStore::new(cfg.sign_delta);
        Server {
            cfg,
            params: initial_params,
            round: 0,
            history,
            full_store: FullGradientStore::new(),
            summaries: Vec::new(),
            sampling_seed: 0,
            forget_requests: Vec::new(),
            tree_fanout: hierarchy::fanout_from_env(),
            sample_frac: hierarchy::sample_frac_from_env(),
            agg_acc: Vec::new(),
            agg_out: Vec::new(),
        }
    }

    /// Queues a request to forget `clients`, stamped with the current
    /// round. The set is deduplicated and sorted; a request identical to
    /// one already queued is dropped (and counted), so a vehicle
    /// re-sending its departure cannot enqueue duplicate recovery work.
    /// Returns whether the request was newly queued.
    pub fn request_forget(&mut self, clients: &[ClientId]) -> bool {
        let mut set: Vec<ClientId> = clients.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            return false;
        }
        if self.forget_requests.iter().any(|r| r.clients == set) {
            fuiov_obs::counter!("fl.forget_requests_duplicate").inc();
            return false;
        }
        fuiov_obs::counter!("fl.forget_requests").inc();
        self.forget_requests.push(ForgetRequest {
            clients: set,
            round: self.round,
        });
        true
    }

    /// Requests queued and not yet drained.
    pub fn pending_forget_requests(&self) -> &[ForgetRequest] {
        &self.forget_requests
    }

    /// Hands the queued requests to the caller (e.g. to submit into a
    /// `core::jobs` service), leaving the queue empty.
    pub fn drain_forget_requests(&mut self) -> Vec<ForgetRequest> {
        std::mem::take(&mut self.forget_requests)
    }

    /// Sets the seed used for per-round client sampling (only relevant
    /// when `client_fraction < 1`).
    pub fn with_sampling_seed(mut self, seed: u64) -> Self {
        self.sampling_seed = seed;
        self
    }

    /// Overrides the RSU/edge aggregation-tree fan-out (`None` = flat).
    /// Defaults to `FUIOV_TREE_FANOUT` at construction. The tree changes
    /// communication and storage layout only — its reduction is bitwise
    /// identical to flat aggregation (see [`crate::hierarchy`]).
    pub fn with_tree_fanout(mut self, fanout: Option<usize>) -> Self {
        self.tree_fanout = fanout.filter(|&f| f >= 2);
        self
    }

    /// Overrides the per-round hash-sampling fraction (`1.0` = everyone).
    /// Defaults to `FUIOV_SAMPLE_FRAC` at construction. This is the
    /// seeded-stream sampler layered on *top* of the legacy
    /// `client_fraction` shuffle (which is kept for back-compat).
    pub fn with_sample_frac(mut self, frac: f64) -> Self {
        self.sample_frac = if frac > 0.0 && frac < 1.0 { frac } else { 1.0 };
        self
    }

    /// Applies the configured client sampling to a set of in-range
    /// vehicle indices. Deterministic per (seed, round); keeps at least
    /// one vehicle when any is in range.
    fn sample_active(&self, mut active: Vec<usize>, round: Round) -> Vec<usize> {
        if self.cfg.client_fraction >= 1.0 || active.len() <= 1 {
            return active;
        }
        let k = (((active.len() as f32) * self.cfg.client_fraction).round() as usize)
            .clamp(1, active.len());
        let mut rng = rng_for(self.sampling_seed, streams::CHURN + 0xA11 + round as u64);
        active.shuffle(&mut rng);
        active.truncate(k);
        active.sort_unstable();
        active
    }

    /// Current global parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Current round (the next round to run).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The configuration in force.
    pub fn config(&self) -> &FlConfig {
        &self.cfg
    }

    /// The recorded history (models, directions, participation).
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// The full-precision gradient record (empty unless
    /// `keep_full_gradients` was set).
    pub fn full_store(&self) -> &FullGradientStore {
        &self.full_store
    }

    /// Per-round summaries so far.
    pub fn summaries(&self) -> &[RoundSummary] {
        &self.summaries
    }

    /// Consumes the server, returning `(final params, history, full store)`.
    pub fn into_parts(self) -> (Vec<f32>, HistoryStore, FullGradientStore) {
        (self.params, self.history, self.full_store)
    }

    /// Runs a single round with the clients listed in `active` (indices
    /// into `clients`).
    ///
    /// Inactive clients are untouched. Records the starting model, every
    /// participant's gradient direction, join rounds and weights, then
    /// applies Eq. 2. With no active clients the model is unchanged (the
    /// RSU had no one in range) but the round still advances.
    ///
    /// # Panics
    ///
    /// Panics if any index in `active` is out of range or a client's
    /// gradient dimension doesn't match the model.
    pub fn run_round(&mut self, clients: &mut [Box<dyn Client>], active: &[usize]) -> RoundSummary {
        let t = self.round;
        // Mid-round dropout hook: a polled vehicle may still fail to
        // upload (`Client::responds_in`). Filtering here keeps dropouts
        // out of every record — history, summaries, comms accounting.
        let polled = active.len();
        let active: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&idx| clients[idx].responds_in(t))
            .collect();
        fuiov_obs::counter!("fl.dropouts").add((polled - active.len()) as u64);

        let uploads: Vec<Upload> = self
            .compute_gradients(clients, &active, t)
            .into_iter()
            .map(|(idx, grad)| Upload {
                client: clients[idx].id(),
                weight: clients[idx].weight(),
                grad,
            })
            .collect();
        self.run_round_uploads(uploads)
    }

    /// Runs a single round from already-delivered uploads.
    ///
    /// This is the transport-independent half of [`Server::run_round`]:
    /// everything from history recording through aggregation and the
    /// Eq. 2 step, with no knowledge of how the gradients arrived. The
    /// aggregate is a left fold over `uploads` *in the given order* — a
    /// transport whose arrival order is nondeterministic (the socket
    /// layer) must buffer its round and sort by client id before calling,
    /// which is what makes networked round outcomes bitwise identical to
    /// the in-process loop for the same participation set.
    ///
    /// # Panics
    ///
    /// Panics if any upload's gradient dimension doesn't match the model.
    pub fn run_round_uploads(&mut self, uploads: Vec<Upload>) -> RoundSummary {
        let t = self.round;
        fuiov_obs::journal::begin("fl.round", t as u64);
        self.history.record_model(t, self.params.clone());

        let mut participants = Vec::with_capacity(uploads.len());
        let mut weights: Vec<f32> = Vec::with_capacity(uploads.len());
        for u in &uploads {
            let id = u.client;
            assert_eq!(
                u.grad.len(),
                self.params.len(),
                "run_round: client {id} gradient dimension mismatch"
            );
            self.history.record_join(id, t);
            self.history.set_weight(id, u.weight);
            self.history.record_gradient(t, id, &u.grad);
            if self.cfg.keep_full_gradients {
                self.full_store.record(t, id, u.grad.clone());
            }
            participants.push(id);
            weights.push(u.weight);
        }

        let tree = self
            .tree_fanout
            .filter(|_| !uploads.is_empty())
            .map(|fanout| AggregationTree::build(uploads.len(), fanout));
        let update_norm = if uploads.is_empty() {
            0.0
        } else {
            // In-place aggregation: `agg_acc`/`agg_out` are recycled
            // across rounds, so the steady state allocates nothing here.
            let refs: Vec<&[f32]> = uploads.iter().map(|u| u.grad.as_slice()).collect();
            match &tree {
                Some(tree) => hierarchy::aggregate_tree_into(
                    self.cfg.aggregation,
                    &refs,
                    &weights,
                    tree,
                    &mut self.agg_acc,
                    &mut self.agg_out,
                ),
                None => aggregate_refs_into(
                    self.cfg.aggregation,
                    &refs,
                    &weights,
                    &mut self.agg_acc,
                    &mut self.agg_out,
                ),
            }
            vector::axpy(-self.cfg.lr_at(t), &self.agg_out, &mut self.params);
            vector::l2_norm(&self.agg_out)
        };

        self.round += 1;
        let summary = RoundSummary {
            round: t,
            participants,
            update_norm,
        };
        self.summaries.push(summary.clone());
        if fuiov_obs::enabled() {
            let n = summary.participants.len();
            let (down, up_full, up_sign) = crate::comms::round_bytes(self.params.len(), n);
            fuiov_obs::counter!("fl.rounds").inc();
            fuiov_obs::counter!("fl.participant_rounds").add(n as u64);
            fuiov_obs::counter!("fl.download_bytes").add(down as u64);
            fuiov_obs::counter!("fl.upload_bytes_full").add(up_full as u64);
            fuiov_obs::counter!("fl.upload_bytes_sign").add(up_sign as u64);
            fuiov_obs::histogram!("fl.update_norm_micros").observe_scaled(update_norm as f64);
            if let Some(tree) = &tree {
                let tier = crate::comms::tree_round_bytes(self.params.len(), n, tree);
                fuiov_obs::counter!("hierarchy.up_vehicle_sign_bytes")
                    .add(tier.up_vehicle_sign as u64);
                fuiov_obs::counter!("hierarchy.up_inter_tier_bytes").add(tier.up_inter_full as u64);
                fuiov_obs::counter!("hierarchy.down_inter_tier_bytes").add(tier.down_inter as u64);
            }
        }
        fuiov_obs::journal::end("fl.round", t as u64, summary.participants.len() as u64);
        summary
    }

    fn compute_gradients(
        &self,
        clients: &mut [Box<dyn Client>],
        active: &[usize],
        round: Round,
    ) -> Vec<(usize, Vec<f32>)> {
        let params = &self.params;
        if !self.cfg.parallel_clients || active.len() <= 1 {
            let mut out = Vec::with_capacity(active.len());
            for &idx in active {
                let g = clients[idx].gradient(params, round);
                out.push((idx, g));
            }
            return out;
        }

        // Fan out across a bounded pool of scoped threads. `iter_mut`
        // yields disjoint `&mut` borrows, so handing each to exactly one
        // thread's work list is safe without any interior mutability on
        // the clients themselves.
        let active_set: std::collections::HashSet<usize> = active.iter().copied().collect();
        let mut work: Vec<(usize, &mut Box<dyn Client>)> = clients
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| active_set.contains(i))
            .collect();
        // Same worker-count knob as the tensor kernels (FUIOV_THREADS).
        let threads = fuiov_tensor::pool::threads().min(work.len()).max(1);
        let mut assignments: Vec<Vec<(usize, &mut Box<dyn Client>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, item) in work.drain(..).enumerate() {
            assignments[i % threads].push(item);
        }
        let results: Mutex<Vec<(usize, Vec<f32>)>> = Mutex::new(Vec::with_capacity(active.len()));
        crossbeam::scope(|scope| {
            for chunk in assignments {
                let results = &results;
                scope.spawn(move |_| {
                    for (idx, client) in chunk {
                        let g = client.gradient(params, round);
                        results.lock().push((idx, g));
                    }
                });
            }
        })
        .expect("client gradient thread panicked");
        let mut out = results.into_inner();
        out.sort_by_key(|(idx, _)| *idx);
        out
    }

    /// Runs all configured rounds following a churn schedule; vehicle `v`
    /// in the schedule corresponds to `clients[v]`. Records departures in
    /// the history and invokes `on_round` after every round with the
    /// current round index and parameters (for accuracy curves).
    ///
    /// The final model is recorded at round `T` so the history spans
    /// `0..=T`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers a different number of clients.
    pub fn train_with(
        &mut self,
        clients: &mut [Box<dyn Client>],
        schedule: &ChurnSchedule,
        mut on_round: impl FnMut(Round, &[f32]),
    ) {
        assert_eq!(
            schedule.len(),
            clients.len(),
            "train_with: schedule/client count mismatch"
        );
        let total = self.cfg.rounds;
        for _ in self.round..total {
            let t = self.round;
            let active = self.sample_active(schedule.active_in(t), t);
            let active = hierarchy::apply_sampling(active, self.sampling_seed, t, self.sample_frac);
            self.run_round(clients, &active);
            for (v, client) in clients.iter().enumerate() {
                if schedule.membership(v).leaves_after == Some(t) {
                    let id = client.id();
                    if self.history.join_round(id).is_some() {
                        self.history.record_leave(id, t);
                    }
                }
            }
            on_round(t, &self.params);
        }
        self.history.record_model(total, self.params.clone());
    }

    /// Convenience wrapper over [`Server::train_with`] without a callback.
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers a different number of clients.
    pub fn train(&mut self, clients: &mut [Box<dyn Client>], schedule: &ChurnSchedule) {
        self.train_with(clients, schedule, |_, _| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HonestClient;
    use fuiov_data::{Dataset, DigitStyle};
    use fuiov_nn::ModelSpec;

    fn spec() -> ModelSpec {
        ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        }
    }

    fn make_clients(n: usize) -> Vec<Box<dyn Client>> {
        let data = Dataset::digits(20 * n, &DigitStyle::small(), 5);
        let parts = fuiov_data::partition::partition_iid(data.len(), n, 5);
        parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, spec(), data.subset(&idx), 10, 5)) as Box<dyn Client>
            })
            .collect()
    }

    fn server(rounds: usize) -> Server {
        let cfg = FlConfig::new(rounds, 0.5)
            .batch_size(10)
            .parallel_clients(false);
        Server::new(cfg, spec().build(1).params())
    }

    #[test]
    fn training_records_complete_history() {
        let mut clients = make_clients(3);
        let mut s = server(4);
        let schedule = ChurnSchedule::static_membership(3, 4);
        s.train(&mut clients, &schedule);
        let h = s.history();
        assert_eq!(h.rounds(), vec![0, 1, 2, 3, 4]); // T+1 models
        for t in 0..4 {
            assert_eq!(h.clients_in_round(t), vec![0, 1, 2]);
        }
        assert_eq!(h.join_round(1), Some(0));
        assert_eq!(s.summaries().len(), 4);
    }

    #[test]
    fn training_reduces_loss() {
        let mut clients = make_clients(3);
        let mut s = server(15);
        let schedule = ChurnSchedule::static_membership(3, 15);
        let initial = s.params().to_vec();
        s.train(&mut clients, &schedule);
        // Evaluate both models on a held-out set.
        let test = Dataset::digits(60, &DigitStyle::small(), 77);
        let (x, y) = test.full();
        let mut m = spec().build(0);
        m.set_params(&initial);
        let (loss_before, _) = m.loss_and_grad(&x, &y);
        m.set_params(s.params());
        let (loss_after, _) = m.loss_and_grad(&x, &y);
        assert!(
            loss_after < loss_before,
            "federated training should reduce loss: {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn parallel_and_serial_give_identical_models() {
        let schedule = ChurnSchedule::static_membership(4, 3);

        let mut c1 = make_clients(4);
        let cfg1 = FlConfig::new(3, 0.1).batch_size(10).parallel_clients(false);
        let mut s1 = Server::new(cfg1, spec().build(1).params());
        s1.train(&mut c1, &schedule);

        let mut c2 = make_clients(4);
        let cfg2 = FlConfig::new(3, 0.1).batch_size(10).parallel_clients(true);
        let mut s2 = Server::new(cfg2, spec().build(1).params());
        s2.train(&mut c2, &schedule);

        assert_eq!(s1.params(), s2.params());
    }

    #[test]
    fn churn_affects_participation_record() {
        use crate::mobility::Membership;
        let mut clients = make_clients(3);
        let mut s = server(5);
        let mut schedule = ChurnSchedule::static_membership(3, 5);
        schedule.set_membership(
            1,
            Membership {
                joined: 2,
                leaves_after: Some(3),
                dropouts: vec![],
            },
        );
        s.train(&mut clients, &schedule);
        let h = s.history();
        assert_eq!(h.join_round(1), Some(2));
        assert_eq!(h.participation(1).unwrap().left, Some(3));
        assert_eq!(h.clients_in_round(0), vec![0, 2]);
        assert_eq!(h.clients_in_round(2), vec![0, 1, 2]);
        assert_eq!(h.clients_in_round(4), vec![0, 2]);
    }

    #[test]
    fn client_sampling_reduces_participants() {
        let mut clients = make_clients(4);
        let cfg = FlConfig::new(6, 0.1)
            .batch_size(10)
            .parallel_clients(false)
            .client_fraction(0.5);
        let mut s = Server::new(cfg, spec().build(1).params()).with_sampling_seed(3);
        let schedule = ChurnSchedule::static_membership(4, 6);
        s.train(&mut clients, &schedule);
        for summary in s.summaries() {
            assert_eq!(summary.participants.len(), 2, "round {}", summary.round);
        }
        // Different rounds sample different subsets (with 4C2=6 options,
        // 6 rounds almost surely differ somewhere).
        let all_same = s
            .summaries()
            .windows(2)
            .all(|w| w[0].participants == w[1].participants);
        assert!(!all_same, "sampling should vary across rounds");
        // Sampling is deterministic given the seed.
        let mut clients2 = make_clients(4);
        let cfg2 = FlConfig::new(6, 0.1)
            .batch_size(10)
            .parallel_clients(false)
            .client_fraction(0.5);
        let mut s2 = Server::new(cfg2, spec().build(1).params()).with_sampling_seed(3);
        s2.train(&mut clients2, &schedule);
        assert_eq!(s.params(), s2.params());
    }

    #[test]
    fn uploads_path_matches_client_path_bitwise() {
        // The transport seam: feeding the same gradients through
        // `run_round_uploads` (sorted by client id, the networked
        // discipline) must reproduce `run_round` exactly.
        let mut c1 = make_clients(3);
        let mut s1 = server(2);
        let mut c2 = make_clients(3);
        let mut s2 = server(2);
        for _ in 0..2 {
            s1.run_round(&mut c1, &[0, 1, 2]);
            let params = s2.params().to_vec();
            let round = s2.round();
            let mut uploads: Vec<Upload> = c2
                .iter_mut()
                .map(|c| Upload {
                    client: c.id(),
                    weight: c.weight(),
                    grad: c.gradient(&params, round),
                })
                .collect();
            uploads.sort_by_key(|u| u.client);
            s2.run_round_uploads(uploads);
        }
        assert_eq!(s1.params(), s2.params());
        assert_eq!(s1.summaries().len(), s2.summaries().len());
        for (a, b) in s1.summaries().iter().zip(s2.summaries()) {
            assert_eq!(a.participants, b.participants);
        }
    }

    #[test]
    fn empty_round_keeps_model_unchanged() {
        let mut clients = make_clients(2);
        let mut s = server(1);
        let before = s.params().to_vec();
        let summary = s.run_round(&mut clients, &[]);
        assert_eq!(summary.update_norm, 0.0);
        assert!(summary.participants.is_empty());
        assert_eq!(s.params(), &before[..]);
        assert_eq!(s.round(), 1);
    }

    #[test]
    fn full_gradient_store_populated_when_enabled() {
        let mut clients = make_clients(2);
        let cfg = FlConfig::new(2, 0.1)
            .batch_size(10)
            .keep_full_gradients(true)
            .parallel_clients(false);
        let mut s = Server::new(cfg, spec().build(1).params());
        let schedule = ChurnSchedule::static_membership(2, 2);
        s.train(&mut clients, &schedule);
        assert!(s.full_store().gradient(0, 0).is_some());
        assert!(s.full_store().gradient(1, 1).is_some());
        assert!(s.full_store().bytes() > 0);
    }

    #[test]
    fn on_round_callback_sees_every_round() {
        let mut clients = make_clients(2);
        let mut s = server(3);
        let schedule = ChurnSchedule::static_membership(2, 3);
        let mut seen = Vec::new();
        s.train_with(&mut clients, &schedule, |t, params| {
            assert!(!params.is_empty());
            seen.push(t);
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
