//! Criterion bench for the **Table I** pipeline (tiny scale).
//!
//! Times the full comparison — train → backtrack → ours / FedRecover /
//! FedRecovery / retrain — and prints one reproduction row so `cargo
//! bench` output doubles as a smoke-level Table I check. The full-scale
//! reproduction lives in the scenario lab (`lab run --rows
//! table1-digits,table1-signs`).

use criterion::{criterion_group, criterion_main, Criterion};
use fuiov_bench::{table1_row, Scenario};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print one row so the bench log shows the reproduced ordering.
    let row = table1_row(Scenario::tiny(42), "digits(tiny)");
    eprintln!(
        "[table1 tiny] original={:.3} unlearned={:.3} retrain={:.3} fedrecover={:.3} fedrecovery={:.3} ours={:.3}",
        row.original, row.unlearned, row.retraining, row.fedrecover, row.fedrecovery, row.ours
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_pipeline_tiny", |b| {
        b.iter(|| black_box(table1_row(Scenario::tiny(42), "digits(tiny)")));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
