//! Criterion bench for the **Fig. 1** poisoning-recovery pipeline (tiny
//! scale): train with malicious clients, erase them all, recover, measure
//! ASR at each stage. Prints one reproduction line per attack. The
//! full-scale reproduction lives in `exp_fig1`.

use criterion::{criterion_group, criterion_main, Criterion};
use fuiov_attacks::{Backdoor, Corner, LabelFlip, Trigger};
use fuiov_bench::{fig1, Attack, Scenario};
use std::hint::black_box;

fn attacked_scenario(attack: Attack) -> Scenario {
    let mut sc = Scenario::tiny(42);
    sc.malicious_fraction = 0.4;
    sc.attack = Some(attack);
    sc
}

fn bench_fig1(c: &mut Criterion) {
    let flip = attacked_scenario(Attack::LabelFlip(LabelFlip::paper_default()));
    let bd = attacked_scenario(Attack::Backdoor(Backdoor {
        trigger: Trigger {
            size: 3,
            value: 1.0,
            corner: Corner::BottomRight,
        },
        target_class: 2,
        fraction: 0.5,
    }));

    for (sc, label) in [(&flip, "label-flip"), (&bd, "backdoor")] {
        let r = fig1(sc, "bench");
        eprintln!(
            "[fig1 tiny {label}] ASR before={:.1}% after-forget={:.1}% after-recover={:.1}%",
            r.asr_before * 100.0,
            r.asr_after_forget * 100.0,
            r.asr_after_recover * 100.0
        );
    }

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("label_flip_pipeline_tiny", |b| {
        b.iter(|| black_box(fig1(&flip, "label-flip")));
    });
    group.bench_function("backdoor_pipeline_tiny", |b| {
        b.iter(|| black_box(fig1(&bd, "backdoor")));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
