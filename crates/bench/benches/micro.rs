//! Micro-benchmarks and ablations for the individual kernels:
//!
//! - aggregation rules (FedAvg vs robust variants) — the per-round server
//!   cost;
//! - compact L-BFGS HVP vs the dense Algorithm-2-as-written
//!   materialisation — the ablation justifying the compact form
//!   (DESIGN.md §5);
//! - one full recovery round at the paper's MNIST model size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fuiov_core::lbfgs::LbfgsApprox;
use fuiov_core::{RoundScratch, StackedLbfgs};
use fuiov_fl::aggregate::{aggregate, aggregate_refs};
use fuiov_fl::AggregationRule;
use fuiov_storage::GradientDirection;
use fuiov_tensor::rng::rng_for;
use fuiov_tensor::{pool, vector};
use rand::Rng;
use std::hint::black_box;

fn random_vec(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = rng_for(seed, dim as u64);
    (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let dim = 52_138; // paper MNIST CNN size
    let n = 20;
    let grads: Vec<Vec<f32>> = (0..n).map(|i| random_vec(dim, i as u64)).collect();
    let weights = vec![1.0f32; n];

    let mut group = c.benchmark_group("aggregate");
    group.throughput(Throughput::Elements((dim * n) as u64));
    for (label, rule) in [
        ("fedavg", AggregationRule::FedAvg),
        ("median", AggregationRule::CoordinateMedian),
        ("trimmed_mean", AggregationRule::TrimmedMean { trim: 2 }),
        ("sign_sgd", AggregationRule::SignSgd { lambda: 1e-3 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(aggregate(rule, &grads, &weights)));
        });
    }
    group.finish();
}

fn bench_lbfgs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lbfgs");

    // HVP cost at realistic model sizes (s = 2 pairs, as in the paper).
    for &dim in &[13_692usize, 52_138] {
        let dws = vec![random_vec(dim, 1), random_vec(dim, 2)];
        let dgs: Vec<Vec<f32>> = dws
            .iter()
            .enumerate()
            .map(|(i, w)| {
                // dg = 2·dw + noise keeps curvature positive.
                let mut g = w.clone();
                fuiov_tensor::vector::scale(2.0, &mut g);
                fuiov_tensor::vector::axpy(0.01, &random_vec(dim, 10 + i as u64), &mut g);
                g
            })
            .collect();
        let approx = LbfgsApprox::new(&dws, &dgs).expect("valid pairs");
        let v = random_vec(dim, 99);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("hvp", dim), &dim, |b, _| {
            b.iter(|| black_box(approx.hvp(&v)));
        });
    }

    // Ablation: compact HVP vs materialising the dense Algorithm-2 matrix
    // (only feasible at toy sizes — which is the point).
    let dim = 64;
    let dws = vec![random_vec(dim, 1), random_vec(dim, 2)];
    let dgs: Vec<Vec<f32>> = dws
        .iter()
        .map(|w| {
            let mut g = w.clone();
            fuiov_tensor::vector::scale(2.0, &mut g);
            g
        })
        .collect();
    let approx = LbfgsApprox::new(&dws, &dgs).expect("valid pairs");
    let v = random_vec(dim, 5);
    group.bench_function("hvp_dim64", |b| b.iter(|| black_box(approx.hvp(&v))));
    group.bench_function("dense_materialise_dim64", |b| {
        b.iter(|| black_box(approx.dense()))
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    use fuiov_tensor::{pool, Mat};

    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    // 32×144×6272 is conv2 of the paper's MNIST CNN at batch 32: the
    // 32×(16·3²) weight matrix times the batched im2col column matrix.
    // 256³ is a cache-pressure probe for the column tiling.
    for &(m, k, n) in &[(32usize, 144usize, 6272usize), (256, 256, 256)] {
        let a = Mat::from_vec(m, k, random_vec(m * k, 11));
        let b_mat = Mat::from_vec(k, n, random_vec(k * n, 12));
        let label = format!("{m}x{k}x{n}");
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_function(BenchmarkId::new("naive", &label), |b| {
            b.iter(|| black_box(a.matmul_naive(&b_mat)));
        });
        pool::set_threads(1);
        group.bench_function(BenchmarkId::new("blocked_serial", &label), |b| {
            b.iter(|| black_box(a.matmul(&b_mat)));
        });
        pool::set_threads(0); // hardware width
        group.bench_function(BenchmarkId::new("blocked_parallel", &label), |b| {
            b.iter(|| black_box(a.matmul(&b_mat)));
        });
    }
    group.finish();
}

fn bench_recovery_round(c: &mut Criterion) {
    // One server-side recovery round at paper MNIST size: n clients ×
    // (unpack + hvp + clip) + aggregation. This is the cost that replaces
    // a full round of client training in the paper's scheme.
    let dim = 52_138;
    let n = 20;
    let dws = vec![random_vec(dim, 1), random_vec(dim, 2)];
    let dgs: Vec<Vec<f32>> = dws
        .iter()
        .map(|w| {
            let mut g = w.clone();
            fuiov_tensor::vector::scale(2.0, &mut g);
            g
        })
        .collect();
    let approx = LbfgsApprox::new(&dws, &dgs).expect("valid pairs");
    let dirs: Vec<fuiov_storage::GradientDirection> = (0..n)
        .map(|i| fuiov_storage::GradientDirection::quantize(&random_vec(dim, i as u64), 1e-6))
        .collect();
    let dw = random_vec(dim, 77);
    let weights = vec![1.0f32; n];

    let mut group = c.benchmark_group("recovery_round");
    group.sample_size(10);
    group.throughput(Throughput::Elements((dim * n) as u64));
    group.bench_function("estimate_clip_aggregate_20clients_52k", |b| {
        b.iter(|| {
            let ests: Vec<Vec<f32>> = dirs
                .iter()
                .map(|d| {
                    let mut est = d.to_f32();
                    let corr = approx.hvp(&dw);
                    fuiov_tensor::vector::axpy(1.0, &corr, &mut est);
                    fuiov_tensor::vector::clip_elementwise(&mut est, 1.0);
                    est
                })
                .collect();
            black_box(aggregate(AggregationRule::FedAvg, &ests, &weights))
        });
    });
    // The same round through the pool's ordered fan-out (the exact code
    // shape `recover_set` now uses), pinned serial vs hardware-wide. The
    // two must produce identical bytes; only wall-clock may differ.
    for (label, threads) in [("serial", 1usize), ("parallel", 0usize)] {
        fuiov_tensor::pool::set_threads(threads);
        group.bench_function(format!("par_map_{label}_20clients_52k"), |b| {
            b.iter(|| {
                let ests = fuiov_tensor::pool::par_map(&dirs, 1, |_i, d| {
                    let mut est = d.to_f32();
                    let corr = approx.hvp(&dw);
                    fuiov_tensor::vector::axpy(1.0, &corr, &mut est);
                    fuiov_tensor::vector::clip_elementwise(&mut est, 1.0);
                    est
                });
                black_box(aggregate(AggregationRule::FedAvg, &ests, &weights))
            });
        });
    }
    fuiov_tensor::pool::set_threads(0);
    group.finish();
}

fn bench_batched_recovery_round(c: &mut Criterion) {
    // The PR's headline comparison: one full recovery round — per-client
    // direction decode + Eq. 6 HVP + clip + FedAvg — through the seed's
    // per-client path (scalar sign decode, five-pass `hvp_reference`,
    // owned estimate vectors) versus the batched engine (LUT decode, one
    // fused stacked inbound sweep, zero-allocation scratch arena). Both
    // paths are asserted bitwise identical before any timing.
    let dim = 13_692; // paper MNIST MLP size
    let n = 32usize;
    let dws = vec![random_vec(dim, 1), random_vec(dim, 2)];
    let dgs: Vec<Vec<f32>> = dws
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let mut g = w.clone();
            vector::scale(2.0, &mut g);
            vector::axpy(0.01, &random_vec(dim, 20 + i as u64), &mut g);
            g
        })
        .collect();
    let approx = LbfgsApprox::new(&dws, &dgs).expect("valid pairs");
    let dirs: Vec<GradientDirection> = (0..n)
        .map(|i| GradientDirection::quantize(&random_vec(dim, 100 + i as u64), 1e-6))
        .collect();
    let dw = random_vec(dim, 77);
    let weights = vec![1.0f32; n];

    let per_client_round = || {
        let ests: Vec<Vec<f32>> = dirs
            .iter()
            .map(|d| {
                let mut est: Vec<f32> = (0..d.len()).map(|i| f32::from(d.sign(i))).collect();
                let corr = approx.hvp_reference(&dw);
                vector::axpy(1.0, &corr, &mut est);
                vector::clip_elementwise(&mut est, 1.0);
                est
            })
            .collect();
        aggregate(AggregationRule::FedAvg, &ests, &weights)
    };

    // Every client gets its own stacked block, exactly as in recover_set
    // (here all blocks carry the same factors, which changes nothing about
    // the work performed per block).
    let stacked = StackedLbfgs::build(dim, (0..n).map(|cid| (cid, &approx)));
    let mut scratch = RoundScratch::new();
    let mut batched_round = || {
        stacked.fused_dots(&dw, &mut scratch.dots);
        stacked.solve_middles(
            &scratch.dots,
            &mut scratch.ps,
            &mut scratch.rhs,
            &mut scratch.p,
        );
        scratch.est.resize(n * dim, 0.0);
        let est_buf = &mut scratch.est[..n * dim];
        let (stacked_ref, ps, dirs_ref) = (&stacked, &scratch.ps, &dirs);
        pool::par_row_bands_weighted(est_buf, n, dim, dim, |rows, band| {
            for (row, p) in band.chunks_mut(dim).zip(rows) {
                dirs_ref[p].decode_into(row);
                let entry = stacked_ref.entry_for(p).expect("all clients stacked");
                stacked_ref.accumulate_correction(entry, ps, &dw, row);
                vector::clip_elementwise(row, 1.0);
            }
        });
        let refs: Vec<&[f32]> = est_buf.chunks(dim).collect();
        aggregate_refs(AggregationRule::FedAvg, &refs, &weights)
    };

    // Differential gate before timing: the two rounds must agree bit for
    // bit, or the speedup below measures the wrong computation.
    let reference = per_client_round();
    let batched = batched_round();
    assert_eq!(
        reference.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        batched.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "batched round diverged from the per-client path"
    );

    let mut group = c.benchmark_group("recovery_round");
    group.sample_size(10);
    group.throughput(Throughput::Elements((dim * n) as u64));
    group.bench_function("per_client_32clients_13k", |b| {
        b.iter(|| black_box(per_client_round()));
    });
    group.bench_function("batched_32clients_13k", |b| {
        b.iter(|| black_box(batched_round()));
    });
    group.finish();
}

fn bench_direction_decode(c: &mut Criterion) {
    // Word-level LUT decode (one 256-entry table lookup per packed byte,
    // four lanes copied at once) against the seed's per-element scalar
    // `sign(i)` extraction. Both write into the same preallocated buffer
    // so the comparison isolates decode cost.
    let dim = 52_138;
    let dir = GradientDirection::quantize(&random_vec(dim, 3), 1e-6);
    let mut out = vec![0.0f32; dim];

    let scalar: Vec<f32> = (0..dir.len()).map(|i| f32::from(dir.sign(i))).collect();
    dir.decode_into(&mut out);
    assert_eq!(
        scalar.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        out.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "LUT decode diverged from scalar decode"
    );

    let mut group = c.benchmark_group("direction");
    group.throughput(Throughput::Elements(dim as u64));
    group.bench_function("decode_scalar_52k", |b| {
        b.iter(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f32::from(dir.sign(i));
            }
            black_box(out.last().copied())
        });
    });
    group.bench_function("decode_lut_52k", |b| {
        b.iter(|| {
            dir.decode_into(&mut out);
            black_box(out.last().copied())
        });
    });
    group.finish();
}

fn bench_simd_kernels(c: &mut Criterion) {
    // The SIMD pass headline: each of the four vectorized kernels timed
    // with the dispatcher pinned to the AVX2 path versus the pinned scalar
    // reference. Every pair is asserted bitwise identical before any
    // timing — the speedup must measure the same computation. Pin the
    // pool to one thread so the comparison isolates lane-level ILP/width
    // gains from thread scaling.
    use fuiov_storage::delta;
    use fuiov_tensor::{simd, Mat};

    let _simd_guard = simd::force_guard();
    pool::set_threads(1);

    // -- GEMM: conv2-shaped packed panel kernel.
    let (m, k, n) = (32usize, 144usize, 6272usize);
    let a = Mat::from_vec(m, k, random_vec(m * k, 11));
    let b_mat = Mat::from_vec(k, n, random_vec(k * n, 12));
    simd::set_forced(Some(true));
    let fast = a.matmul(&b_mat);
    simd::set_forced(Some(false));
    let slow = a.matmul(&b_mat);
    assert_eq!(
        fast.as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u32>>(),
        slow.as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u32>>(),
        "gemm SIMD path diverged from scalar"
    );

    let mut group = c.benchmark_group("simd_vs_scalar");
    group.sample_size(20);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    simd::set_forced(Some(false));
    group.bench_function("gemm_scalar_32x144x6272", |b| {
        b.iter(|| black_box(a.matmul(&b_mat)));
    });
    simd::set_forced(Some(true));
    group.bench_function("gemm_simd_32x144x6272", |b| {
        b.iter(|| black_box(a.matmul(&b_mat)));
    });

    // -- row_dots_into: the stacked-HVP inbound sweep (2s+1 rows × dim).
    let (rows, cols) = (96usize, 52_138usize);
    let mat = Mat::from_vec(rows, cols, random_vec(rows * cols, 21));
    let v = random_vec(cols, 22);
    let mut dots_fast = vec![0.0f32; rows];
    let mut dots_slow = vec![0.0f32; rows];
    simd::set_forced(Some(true));
    mat.row_dots_into(&v, &mut dots_fast);
    mat.row_dots_into_scalar(&v, &mut dots_slow);
    assert_eq!(
        dots_fast.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        dots_slow.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "row_dots SIMD path diverged from scalar"
    );
    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function("row_dots_scalar_96x52k", |b| {
        b.iter(|| {
            mat.row_dots_into_scalar(&v, &mut dots_slow);
            black_box(dots_slow.last().copied())
        });
    });
    simd::set_forced(Some(true));
    group.bench_function("row_dots_simd_96x52k", |b| {
        b.iter(|| {
            mat.row_dots_into(&v, &mut dots_fast);
            black_box(dots_fast.last().copied())
        });
    });

    // -- direction decode: 2-bit sign unpack to f32, plus the fused
    // decode-and-accumulate (`acc += a · sign`) form the recovery loops
    // use. The plain unpack is store-bandwidth-bound (the scalar LUT is
    // already one 16-byte copy per packed byte), so the interesting
    // number is the compute-bound axpy.
    let dim = 52_138;
    let dir = GradientDirection::quantize(&random_vec(dim, 3), 1e-6);
    let mut dec_fast = vec![0.0f32; dim];
    let mut dec_slow = vec![0.0f32; dim];
    simd::set_forced(Some(true));
    dir.decode_into(&mut dec_fast);
    dir.decode_into_scalar(&mut dec_slow);
    assert_eq!(
        dec_fast.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        dec_slow.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "direction decode SIMD path diverged from scalar"
    );
    let mut axpy_fast: Vec<f64> = (0..dim).map(|i| i as f64 * 1e-5).collect();
    let mut axpy_slow = axpy_fast.clone();
    dir.decode_axpy(0.125, &mut axpy_fast);
    dir.decode_axpy_scalar(0.125, &mut axpy_slow);
    assert_eq!(
        axpy_fast.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
        axpy_slow.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
        "direction decode_axpy SIMD path diverged from scalar"
    );
    group.throughput(Throughput::Elements(dim as u64));
    group.bench_function("direction_decode_scalar_52k", |b| {
        b.iter(|| {
            dir.decode_into_scalar(&mut dec_slow);
            black_box(dec_slow.last().copied())
        });
    });
    simd::set_forced(Some(true));
    group.bench_function("direction_decode_simd_52k", |b| {
        b.iter(|| {
            dir.decode_into(&mut dec_fast);
            black_box(dec_fast.last().copied())
        });
    });
    group.bench_function("direction_decode_axpy_scalar_52k", |b| {
        b.iter(|| {
            dir.decode_axpy_scalar(0.125, &mut axpy_slow);
            black_box(axpy_slow.last().copied())
        });
    });
    simd::set_forced(Some(true));
    group.bench_function("direction_decode_axpy_simd_52k", |b| {
        b.iter(|| {
            dir.decode_axpy(0.125, &mut axpy_fast);
            black_box(axpy_fast.last().copied())
        });
    });

    // -- delta codec roundtrip: checkpoint-shaped nearby floats, so the
    // single-byte varint fast path dominates exactly as it does on real
    // delta-coded model history.
    let base = random_vec(dim, 41);
    let step = random_vec(dim, 42);
    let cur: Vec<f32> = base.iter().zip(&step).map(|(b, s)| b + 1e-4 * s).collect();
    let mut enc_fast = Vec::new();
    let mut enc_slow = Vec::new();
    simd::set_forced(Some(true));
    delta::encode(&base, &cur, &mut enc_fast);
    delta::encode_scalar(&base, &cur, &mut enc_slow);
    assert_eq!(enc_fast, enc_slow, "delta encode SIMD path diverged");
    let rt_fast = delta::decode(&base, &enc_fast, dim).expect("roundtrip");
    simd::set_forced(Some(false));
    let rt_slow = delta::decode_scalar(&base, &enc_slow, dim).expect("roundtrip");
    assert_eq!(
        rt_fast.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        rt_slow.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "delta decode SIMD path diverged from scalar"
    );
    group.throughput(Throughput::Elements(dim as u64));
    group.bench_function("delta_roundtrip_scalar_52k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            delta::encode_scalar(&base, &cur, &mut buf);
            black_box(delta::decode_scalar(&base, &buf, dim))
        });
    });
    simd::set_forced(Some(true));
    group.bench_function("delta_roundtrip_simd_52k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            delta::encode(&base, &cur, &mut buf);
            black_box(delta::decode(&base, &buf, dim))
        });
    });

    simd::set_forced(None);
    pool::set_threads(0);
    group.finish();
}

fn bench_history_tiering(c: &mut Criterion) {
    // The tiered-store claim: under a tight in-memory budget the history
    // keeps a small hot set resident (delta-coded cold rounds live in the
    // spill file) and streaming replay through `RoundView` + `prefetch`
    // stays within a small factor of the all-in-memory replay. Both
    // replays are asserted bitwise identical before any timing.
    use fuiov_storage::{HistoryStore, TierConfig};

    let dim = 52_138; // paper MNIST CNN size
    let n = 16usize;
    let rounds = 24usize;
    let build = |tier: TierConfig| -> HistoryStore {
        let mut h = HistoryStore::with_tier(1e-6, tier);
        for cid in 0..n {
            h.record_join(cid, 0);
        }
        let mut w = random_vec(dim, 7);
        for t in 0..rounds {
            h.record_model(t, w.clone());
            for cid in 0..n {
                h.record_gradient(t, cid, &random_vec(dim, (t * n + cid) as u64));
            }
            vector::axpy(-1e-3, &random_vec(dim, 1_000 + t as u64), &mut w);
        }
        h.record_model(rounds, w);
        h
    };
    // One streaming replay pass F..T through the batched engine: per
    // round, dw_t = w̄ − w_t, one fused stacked inbound sweep, per-client
    // LUT direction decode + Eq. 6 correction + clip, FedAvg, step — the
    // exact `recover_set` round, sourcing every model and direction
    // through the store's `RoundView` + `prefetch` path.
    let dws = vec![random_vec(dim, 1), random_vec(dim, 2)];
    let dgs: Vec<Vec<f32>> = dws
        .iter()
        .map(|w| {
            let mut g = w.clone();
            vector::scale(2.0, &mut g);
            g
        })
        .collect();
    let approx = LbfgsApprox::new(&dws, &dgs).expect("valid pairs");
    let stacked = StackedLbfgs::build(dim, (0..n).map(|cid| (cid, &approx)));
    let replay = |h: &HistoryStore| -> Vec<f32> {
        let mut params = h.model(0).expect("round 0").to_vec();
        let mut scratch = RoundScratch::new();
        let mut dw_t = vec![0.0f32; dim];
        let weights = vec![1.0f32; n];
        for t in 0..rounds {
            let view = h.round_view(t);
            if t + 1 < rounds {
                h.prefetch(t + 1);
            }
            let w_t = view.model().expect("replay model");
            vector::sub_into(&params, w_t, &mut dw_t);
            stacked.fused_dots(&dw_t, &mut scratch.dots);
            stacked.solve_middles(
                &scratch.dots,
                &mut scratch.ps,
                &mut scratch.rhs,
                &mut scratch.p,
            );
            scratch.est.resize(n * dim, 0.0);
            let mut rows = 0;
            for (row, (cid, dir)) in scratch.est.chunks_mut(dim).zip(view.directions()) {
                dir.decode_into(row);
                let entry = stacked.entry_for(cid).expect("all clients stacked");
                stacked.accumulate_correction(entry, &scratch.ps, &dw_t, row);
                vector::clip_elementwise(row, 1.0);
                rows += 1;
            }
            let refs: Vec<&[f32]> = scratch.est.chunks(dim).take(rows).collect();
            let agg = aggregate_refs(AggregationRule::FedAvg, &refs, &weights[..rows]);
            vector::axpy(-0.05, &agg, &mut params);
        }
        params
    };

    let hot = build(TierConfig::unbounded());
    // Budget ≈ two rounds of f32 checkpoints: everything older spills.
    let budget = 2 * dim * 4;
    let cold = build(TierConfig::bounded(budget).with_keyframe_interval(8));
    assert!(
        cold.spilled_bytes() > 0,
        "budget must force the cold store to spill"
    );

    let logical = hot.model_bytes() + hot.direction_bytes();
    let resident = cold.resident_bytes();
    eprintln!(
        "[history] logical {} B vs resident {} B over {rounds} rounds \
         ({:.1}x resident reduction; {} B delta-coded on disk, {} B/model-round stored)",
        logical,
        resident,
        logical as f64 / resident as f64,
        cold.spilled_bytes(),
        cold.model_bytes_stored() / (rounds + 1),
    );
    assert!(
        resident * 4 <= logical,
        "tiering must cut resident history bytes at least 4x: {resident} vs {logical}"
    );

    // Differential gate: the spilled stream must replay the same bits.
    let reference = replay(&hot);
    let streamed = replay(&cold);
    assert_eq!(
        reference.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        streamed.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
        "cold-store streaming replay diverged from the in-memory replay"
    );

    let mut group = c.benchmark_group("history");
    group.sample_size(10);
    group.throughput(Throughput::Elements((dim * n * rounds) as u64));
    group.bench_function("replay_hot_16c_52k", |b| {
        b.iter(|| black_box(replay(&hot)));
    });
    group.bench_function("replay_cold_stream_16c_52k", |b| {
        b.iter(|| black_box(replay(&cold)));
    });
    group.finish();
}

fn bench_conv_backends(c: &mut Criterion) {
    use fuiov_nn::layers::{Conv2d, ConvBackend, Layer};
    use fuiov_nn::Tensor4;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    for &(ch_in, ch_out, hw) in &[(8usize, 16usize, 16usize), (16, 32, 32)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let direct = Conv2d::new(&mut rng, ch_in, ch_out, 3, 1);
        let gemm = direct.clone().with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            4,
            ch_in,
            hw,
            hw,
            (0..4 * ch_in * hw * hw)
                .map(|i| (i as f32 * 0.137).sin())
                .collect(),
        );
        let label = format!("{ch_in}x{ch_out}x{hw}");
        for (name, layer) in [("direct", direct), ("im2col", gemm)] {
            let mut layer = layer;
            group.bench_function(BenchmarkId::new(name, &label), |b| {
                b.iter(|| black_box(layer.forward(&x)));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregation,
    bench_lbfgs,
    bench_gemm,
    bench_recovery_round,
    bench_batched_recovery_round,
    bench_direction_decode,
    bench_simd_kernels,
    bench_history_tiering,
    bench_conv_backends
);
criterion_main!(benches);
