//! Criterion bench for the **Fig. 2** clip-threshold sweep (tiny scale).
//!
//! Trains once outside the measurement loop, then times the recovery at
//! each `L` — the quantity the server actually pays per unlearning
//! request. Prints the reproduced accuracy-vs-L series. The full-scale
//! sweep lives in `exp_fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuiov_bench::{fig2, Scenario};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let trained = Scenario::tiny(42).train();

    let series = fig2(&trained, &[0.01, 0.1, 1.0, 10.0]);
    for (l, acc) in &series {
        eprintln!("[fig2 tiny] L={l}: acc={acc:.3}");
    }

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for l in [0.1f32, 1.0, 10.0] {
        group.bench_with_input(BenchmarkId::new("recover_at_L", l), &l, |b, &l| {
            b.iter(|| black_box(fig2(&trained, &[l])));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
