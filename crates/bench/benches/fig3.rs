//! Criterion bench for the **Fig. 3** sign-threshold sweep (tiny scale).
//!
//! Trains once (keeping full gradients), then times the per-δ work:
//! re-quantising the history and running recovery. Prints the reproduced
//! accuracy-vs-δ series. The full-scale sweep lives in `exp_fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuiov_bench::{fig3, Scenario};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let trained = Scenario::tiny(42).train(); // tiny keeps full gradients

    let series = fig3(&trained, &[1e-8, 1e-6, 1e-2]);
    for (d, acc) in &series {
        eprintln!("[fig3 tiny] δ={d:.0e}: acc={acc:.3}");
    }

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for delta in [1e-8f32, 1e-6, 1e-2] {
        group.bench_with_input(
            BenchmarkId::new("requantize_and_recover", format!("{delta:.0e}")),
            &delta,
            |b, &delta| {
                b.iter(|| black_box(fig3(&trained, &[delta])));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
