//! Criterion bench for the **storage claim** (§I "~95 % savings").
//!
//! Times sign quantisation + 2-bit packing and unpacking at the paper's
//! model sizes, and prints the measured savings table. The full report
//! lives in `exp_storage`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fuiov_bench::storage_rows;
use fuiov_storage::GradientDirection;
use fuiov_tensor::rng::rng_for;
use rand::Rng;
use std::hint::black_box;

fn bench_storage(c: &mut Criterion) {
    for row in storage_rows(&[("mnist-cnn", 52_138), ("gtsrb-cnn", 13_692)], 100, 100, 0) {
        eprintln!(
            "[storage] {}: {} params, full {} B vs packed {} B per client·round ({:.2}% saved)",
            row.model,
            row.params,
            row.full_bytes,
            row.packed_bytes,
            row.savings * 100.0
        );
    }

    let mut group = c.benchmark_group("storage");
    for &dim in &[13_692usize, 52_138, 1_000_000] {
        let mut rng = rng_for(1, dim as u64);
        let grad: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("quantize_pack", dim), &grad, |b, g| {
            b.iter(|| black_box(GradientDirection::quantize(g, 1e-6)));
        });
        let packed = GradientDirection::quantize(&grad, 1e-6);
        group.bench_with_input(BenchmarkId::new("unpack_f32", dim), &packed, |b, p| {
            b.iter(|| black_box(p.to_f32()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
