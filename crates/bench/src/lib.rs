//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§V).
//!
//! - [`scenario`]: deterministic construction of the §V setups (datasets,
//!   attackers, the forgotten client's pinned join round `F = 2`).
//! - [`experiments`]: one function per table/figure, shared between the
//!   `exp_*` binaries (reduced paper scale), the scenario-lab runner
//!   (`fuiov-lab`), and the Criterion benches (tiny scale).
//!
//! Run the reproductions with e.g. `cargo run --release -p fuiov-bench
//! --bin exp_fig1`; Table I and the IoT task are scenario rows now
//! (`cargo run --release -p fuiov-lab --bin lab -- run --rows
//! table1-digits,table1-signs,iot-sensors`).

pub mod experiments;
pub mod scenario;

pub use experiments::{fig1, fig2, fig3, storage_rows, table1_row};
pub use scenario::{Attack, DatasetKind, Scenario, Trained};
