//! Reproduces **Fig. 3**: recovered-model accuracy vs the sign threshold
//! `δ` (with `L` fixed at 1).
//!
//! Paper reference: optimum at `δ = 1e-6` (86 % on MNIST). Larger δ zeroes
//! out too many gradient elements (information loss); smaller δ promotes
//! negligible elements to full ±1 steps (noise amplification) — another
//! interior maximum.
//!
//! Implementation note: the training run keeps full gradients once and the
//! sweep re-quantises the same history at every δ, so all points share one
//! trajectory (`HistoryStore::requantized`).
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_fig3 [--tiny] [--seed N]`

use fuiov_bench::{fig3, Scenario};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Fig. 3: accuracy after recovery vs sign threshold δ (L = 1) ==");
    println!("(paper: interior optimum at δ = 1e-6, accuracy 86%)\n");

    let mut sc = if tiny {
        Scenario::tiny(seed)
    } else {
        Scenario::digits(seed)
    };
    sc.keep_full_gradients = true;
    eprintln!("training once (keeping full gradients for re-quantisation) …");
    let trained = sc.train();

    let deltas = [
        1e-8f32, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
    ];
    eprintln!("sweeping δ over {deltas:?} …");
    let pts = fig3(&trained, &deltas);

    let mut table = Table::new(&["δ", "recovered accuracy"]);
    for (d, acc) in &pts {
        table.row(&[format!("{d:.0e}"), fmt3(*acc)]);
    }
    println!("{table}");
    let best = pts
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty sweep");
    println!("best δ = {:.0e} (accuracy {})", best.0, fmt3(best.1));
    println!("expected shape: flat/high for small δ, degrading as δ grows past the gradient scale");
}
