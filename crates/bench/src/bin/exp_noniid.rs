//! Extension experiment — **recovery under non-IID data**.
//!
//! The paper evaluates IID splits; vehicles in a real IoV see
//! location-skewed data. This experiment repeats the Table-I digits
//! comparison under Dirichlet label skew to check whether the sign-only
//! recovery degrades gracefully as clients' gradients become more
//! heterogeneous (sign agreement across clients drops, so the FedAvg of
//! directions carries less signal).
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_noniid [--seed N]`

use fuiov_bench::{table1_row, Scenario};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Extension: unlearning methods under label-skewed (non-IID) data ==\n");

    let mut table = Table::new(&[
        "split",
        "original",
        "retraining",
        "fedrecover",
        "fedrecovery",
        "ours",
        "sign agreement",
    ]);
    for (alpha, label) in [
        (None, "IID (paper setting)"),
        (Some(1.0), "Dirichlet α=1.0"),
        (Some(0.3), "Dirichlet α=0.3"),
    ] {
        eprintln!("running {label} …");
        let mut sc = Scenario::digits(seed);
        sc.non_iid_alpha = alpha;
        let row = table1_row(sc, "digits");
        table.row(&[
            label.to_string(),
            fmt3(row.original),
            fmt3(row.retraining),
            fmt3(row.fedrecover),
            fmt3(row.fedrecovery),
            fmt3(row.ours),
            fmt3(row.sign_agreement),
        ]);
    }
    println!("{table}");
    println!("expected shape: every method degrades with skew; ours stays between");
    println!("fedrecover and fedrecovery throughout. Sign agreement (the recovery");
    println!("signal's density) drops with skew, explaining ours' degradation.");
}
