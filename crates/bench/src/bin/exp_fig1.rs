//! Reproduces **Fig. 1**: attack success rate on the digits task before
//! unlearning, after forgetting (backtracking), and after recovery, for
//! the label-flip and backdoor attacks.
//!
//! Paper reference (MNIST): ASR 56 % (label flip) and 41 % (backdoor)
//! before unlearning; both < 1 % after forgetting; no visible rebound
//! after recovery.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_fig1 [--tiny] [--seed N]`

use fuiov_attacks::{Backdoor, Corner, LabelFlip, Trigger};
use fuiov_bench::{fig1, Attack, Scenario};
use fuiov_eval::table::{fmt_pct, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Fig. 1: attack success rate across the unlearning pipeline ==");
    println!("(paper: 56%/41% before; <1% after forgetting; no rebound after recovery)\n");

    let mut base = if tiny {
        Scenario::tiny(seed)
    } else {
        Scenario::digits(seed)
    };
    base.malicious_fraction = 0.2;

    let mut table = Table::new(&[
        "attack",
        "ASR before",
        "ASR after forgetting",
        "ASR after recovery",
        "clean acc before",
        "clean acc after recovery",
    ]);

    // The paper's trigger is a black square on MNIST; our synthetic digits
    // have black backgrounds, so the visible-trigger equivalent is bright
    // (DESIGN.md §2 documents the substitution).
    let bright_backdoor = Backdoor {
        trigger: Trigger {
            size: 3,
            value: 1.0,
            corner: Corner::BottomRight,
        },
        target_class: 2,
        fraction: 0.5,
    };
    for (attack, label) in [
        (
            Attack::LabelFlip(LabelFlip::paper_default()),
            "label-flip (7→1)",
        ),
        (Attack::Backdoor(bright_backdoor), "backdoor (3×3 → 2)"),
    ] {
        eprintln!("running {label} …");
        let mut sc = base.clone();
        sc.attack = Some(attack);
        let r = fig1(&sc, label);
        table.row(&[
            r.attack.to_string(),
            fmt_pct(r.asr_before),
            fmt_pct(r.asr_after_forget),
            fmt_pct(r.asr_after_recover),
            fmt_pct(r.acc_before),
            fmt_pct(r.acc_after_recover),
        ]);
    }
    println!("{table}");
    println!("expected shape: high ASR before; ASR collapses after forgetting; no rebound after recovery");
}
