//! Extension experiment — **checkpoint thinning**: how much of the
//! *model* history (the part the 2-bit trick doesn't compress) can the
//! server discard before recovery quality suffers?
//!
//! The paper compresses gradients 16× but still stores every round's
//! global model. This experiment thins models to every k-th round
//! (pinning join rounds, the backtracking targets) and recovers with
//! linear interpolation for the missing replay rounds — quantifying the
//! storage/quality trade-off that Wei et al. \[32\]-style selective storage
//! navigates.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_thinning [--seed N]`

use fuiov_bench::experiments::ours_config;
use fuiov_bench::Scenario;
use fuiov_core::{recover_set, NoOracle};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Extension: model-checkpoint thinning vs recovery quality ==\n");

    let sc = Scenario::digits(seed);
    eprintln!("training once …");
    let trained = sc.train();
    let forgotten = sc.forgotten_id();
    println!(
        "original accuracy {}, full model history {} KiB\n",
        fmt3(trained.accuracy_of(&trained.final_params)),
        trained.history.model_bytes() / 1024
    );

    let mut table = Table::new(&[
        "keep every",
        "models stored",
        "model bytes (KiB)",
        "recovered accuracy",
    ]);
    for keep_every in [1usize, 2, 5, 10, 25] {
        let thin = trained.history.thinned_models(keep_every);
        let cfg = ours_config(&thin, sc.lr).interpolate_missing_models(true);
        let out =
            recover_set(&thin, &[forgotten], &cfg, &mut NoOracle, |_, _| {}).expect("recover");
        table.row(&[
            keep_every.to_string(),
            thin.rounds().len().to_string(),
            (thin.model_bytes() / 1024).to_string(),
            fmt3(trained.accuracy_of(&out.params)),
        ]);
    }
    println!("{table}");
    println!("expected shape: mild thinning is nearly free (the trajectory is smooth);");
    println!("aggressive thinning degrades recovery as interpolation misses curvature");
}
