//! Networked-plane loopback bench: clients × payload × cadence.
//!
//! Runs real socket rounds (TCP loopback, thread-per-vehicle) through
//! [`fuiov_net::NetServer`] and sweeps:
//!
//! - **clients** — fan-out of the vectored round broadcast;
//! - **payload** — model dimension, including the paper's 52,138-param
//!   MNIST CNN shape, in both full-`f32` and 2-bit sign upload modes;
//! - **hz** — vehicle upload cadence (`0` = unpaced, vehicles answer as
//!   fast as they can), modelling the beaconing rate of a real RSU cell.
//!
//! Every cell asserts that the transport's `net.bytes_{tx,rx}` counters
//! reconcile **exactly** with the static [`fuiov_fl::comms::round_bytes`]
//! accounting — the wire layer transmits precisely what the simulator
//! has always claimed a round costs, byte for byte — then records
//! wall-clock, per-round latency, and goodput to `BENCH_net.json`.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_net`
//! (`FUIOV_BENCH_SMOKE=1` runs a one-cell sweep and skips the JSON).

use fuiov_fl::comms::round_bytes;
use fuiov_fl::{Client, FlConfig, Server};
use fuiov_net::{NetAddr, NetConfig, NetServer, NetVehicle, UploadMode, VehicleConfig};
use fuiov_obs::Snapshot;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A wire-bench client: deterministic, allocation-light gradients (the
/// bench times the transport, not backprop), with optional cadence
/// pacing — at `hz > 0` the vehicle waits out its beacon interval before
/// answering, like a real RSU cell schedule.
struct PacedClient {
    id: usize,
    hz: u32,
}

impl Client for PacedClient {
    fn id(&self) -> usize {
        self.id
    }

    fn weight(&self) -> f32 {
        1.0
    }

    fn gradient(&mut self, params: &[f32], round: usize) -> Vec<f32> {
        if self.hz > 0 {
            std::thread::sleep(Duration::from_secs_f64(1.0 / f64::from(self.hz)));
        }
        let bias = (self.id * 131 + round) as f32 * 1e-3;
        params.iter().map(|p| p * 1e-2 + bias).collect()
    }
}

struct Cell {
    clients: usize,
    dim: usize,
    mode: UploadMode,
    hz: u32,
    rounds: usize,
}

struct Row {
    cell: Cell,
    wall_ns: u128,
    tx_payload: u64,
    rx_payload: u64,
    tx_overhead: u64,
    rx_overhead: u64,
}

fn mode_name(mode: UploadMode) -> &'static str {
    match mode {
        UploadMode::FullF32 => "full-f32",
        UploadMode::Sign2Bit => "sign-2bit",
    }
}

/// One loopback run; panics if the byte books don't balance.
fn run_cell(cell: Cell) -> Row {
    let Cell {
        clients,
        dim,
        mode,
        hz,
        rounds,
    } = cell;
    let before = Snapshot::capture();

    let cfg = NetConfig::new(NetAddr::parse("tcp:127.0.0.1:0"), clients)
        .with_mode(mode)
        .with_deadline(Duration::from_secs(30));
    let mut net = NetServer::bind(cfg).expect("bind loopback");
    let addr = net.local_addr().clone();
    let vehicles: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut vcfg = VehicleConfig::new(addr, 7);
                if mode == UploadMode::Sign2Bit {
                    vcfg = vcfg.with_sign_uploads(1e-3);
                }
                NetVehicle::new(vcfg, Box::new(PacedClient { id, hz }), dim)
                    .run()
                    .expect("vehicle run")
            })
        })
        .collect();

    let mut fl = Server::new(FlConfig::new(rounds, 0.1), vec![0.01; dim]);
    let start = Instant::now();
    let report = net.serve(&mut fl, rounds).expect("serve");
    let wall_ns = start.elapsed().as_nanos();
    for v in vehicles {
        v.join().expect("vehicle thread");
    }

    // The books must balance, exactly: what the wire moved is what the
    // comms model says a round costs, per direction, per mode.
    let (down, up_full, up_sign) = round_bytes(dim, clients);
    let up = match mode {
        UploadMode::FullF32 => up_full,
        UploadMode::Sign2Bit => up_sign,
    };
    assert_eq!(
        report.tx_payload,
        (rounds * down) as u64,
        "broadcast bytes diverge from comms::round_bytes"
    );
    assert_eq!(
        report.rx_payload,
        (rounds * up) as u64,
        "upload bytes diverge from comms::round_bytes"
    );
    let delta = Snapshot::capture().delta(&before);
    assert_eq!(
        delta.counter("net.bytes_tx"),
        report.tx_payload,
        "net.bytes_tx counter out of step with the run report"
    );
    assert_eq!(
        delta.counter("net.bytes_rx"),
        report.rx_payload,
        "net.bytes_rx counter out of step with the run report"
    );
    assert_eq!(
        report.duplicates + report.stale + report.torn + report.timeouts,
        0,
        "clean loopback run recorded wire faults"
    );

    Row {
        cell: Cell {
            clients,
            dim,
            mode,
            hz,
            rounds,
        },
        wall_ns,
        tx_payload: report.tx_payload,
        rx_payload: report.rx_payload,
        tx_overhead: report.tx_overhead,
        rx_overhead: report.rx_overhead,
    }
}

fn main() {
    let smoke = std::env::var("FUIOV_BENCH_SMOKE").is_ok_and(|v| v != "0");

    // The 52,138-param cell is the paper's MNIST CNN; 13,692 its GTSRB
    // CNN. The smoke sweep keeps one tiny cell per mode so the bench
    // path (including its reconciliation asserts) cannot rot.
    let (client_counts, dims, cadences, rounds): (&[usize], &[usize], &[u32], usize) = if smoke {
        (&[2], &[521], &[0], 1)
    } else {
        (&[2, 4, 8], &[13_692, 52_138], &[0, 25], 3)
    };

    println!("== Networked plane: loopback rounds ==");
    println!("(TCP loopback, thread-per-vehicle, {rounds} rounds per cell)\n");
    println!(
        "{:>7} {:>7} {:>9} {:>4} {:>12} {:>12} {:>10}",
        "clients", "dim", "mode", "hz", "round ms", "goodput MB/s", "overhead"
    );

    let mut rows = Vec::new();
    for &clients in client_counts {
        for &dim in dims {
            for &mode in &[UploadMode::FullF32, UploadMode::Sign2Bit] {
                for &hz in cadences {
                    let row = run_cell(Cell {
                        clients,
                        dim,
                        mode,
                        hz,
                        rounds,
                    });
                    let secs = row.wall_ns as f64 / 1e9;
                    let payload = (row.tx_payload + row.rx_payload) as f64;
                    println!(
                        "{:>7} {:>7} {:>9} {:>4} {:>12.3} {:>12.2} {:>10}",
                        clients,
                        dim,
                        mode_name(mode),
                        hz,
                        row.wall_ns as f64 / 1e6 / rounds as f64,
                        payload / 1e6 / secs,
                        row.tx_overhead + row.rx_overhead,
                    );
                    rows.push(row);
                }
            }
        }
    }

    println!("\nall cells reconciled: net.bytes_{{tx,rx}} == comms::round_bytes, exactly");

    if smoke {
        println!("(smoke sweep: BENCH_net.json not rewritten)");
        return;
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(
        json,
        "    \"experiment\": \"exp_net\",\n    \"transport\": \"tcp-loopback\",\n    \"rounds_per_cell\": {rounds},\n    \"notes\": \"thread-per-vehicle over NetServer; hz = vehicle upload cadence (0 = unpaced); payload bytes reconciled exactly against comms::round_bytes and the net.bytes_tx/rx counters before timing is recorded; overhead = 35-byte FUSG frame cost, counted separately from payload.\""
    );
    json.push_str("  },\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let secs = r.wall_ns as f64 / 1e9;
        let _ = writeln!(
            json,
            "    {{\"clients\": {}, \"dim\": {}, \"mode\": \"{}\", \"hz\": {}, \"rounds\": {}, \"wall_ns\": {}, \"round_ms\": {:.3}, \"tx_payload_bytes\": {}, \"rx_payload_bytes\": {}, \"tx_overhead_bytes\": {}, \"rx_overhead_bytes\": {}, \"goodput_mb_s\": {:.3}}}{}",
            r.cell.clients,
            r.cell.dim,
            mode_name(r.cell.mode),
            r.cell.hz,
            r.cell.rounds,
            r.wall_ns,
            r.wall_ns as f64 / 1e6 / r.cell.rounds as f64,
            r.tx_payload,
            r.rx_payload,
            r.tx_overhead,
            r.rx_overhead,
            (r.tx_payload + r.rx_payload) as f64 / 1e6 / secs,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
