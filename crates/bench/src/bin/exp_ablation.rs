//! Ablations over the recovery design choices (DESIGN.md §5): the Eq. 6
//! Hessian correction, the L-BFGS buffer size `s`, the vector-pair
//! refresh interval, and the adaptive divergence trigger.
//!
//! One training run; each row is one recovery configuration.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_ablation [--tiny] [--seed N]`

use fuiov_bench::experiments::ours_config;
use fuiov_bench::Scenario;
use fuiov_core::{recover_set, NoOracle};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Ablations: recovery design choices ==\n");

    let sensors = args.iter().any(|a| a == "--sensors");
    let sc = if tiny {
        Scenario::tiny(seed)
    } else if sensors {
        Scenario::sensors(seed)
    } else {
        Scenario::digits(seed)
    };
    eprintln!("training once …");
    let trained = sc.train();
    let forgotten = sc.forgotten_id();
    let base = ours_config(&trained.history, sc.lr);
    println!(
        "original accuracy {}, unlearned accuracy {}\n",
        fmt3(trained.accuracy_of(&trained.final_params)),
        fmt3({
            let bt = fuiov_core::backtrack(&trained.history, forgotten).expect("backtrack");
            trained.accuracy_of(&bt.params)
        }),
    );

    let mut table = Table::new(&["variant", "recovered accuracy", "estimator fallbacks"]);
    let mut run = |label: &str, cfg: fuiov_core::RecoveryConfig| {
        let out = recover_set(
            &trained.history,
            &[forgotten],
            &cfg,
            &mut NoOracle,
            |_, _| {},
        )
        .expect("recover");
        table.row(&[
            label.to_string(),
            fmt3(trained.accuracy_of(&out.params)),
            out.estimator_fallbacks.to_string(),
        ]);
    };

    run("paper defaults (s=2, refresh 21, Eq. 6 on)", base);
    run(
        "no Hessian correction (sign replay)",
        base.without_hessian(),
    );
    run("buffer s=1", base.buffer_size(1));
    run("buffer s=4", base.buffer_size(4));
    run("buffer s=8", base.buffer_size(8));
    run("refresh every 5 rounds", base.pair_refresh_interval(5));
    run(
        "refresh never (interval 10000)",
        base.pair_refresh_interval(10_000),
    );
    run(
        "adaptive divergence trigger (patience 5)",
        base.divergence_patience(Some(5)),
    );
    run("clip L = 0.5", base.clip_threshold(0.5));
    run("clip L = 2", base.clip_threshold(2.0));

    println!("{table}");
    println!("expected: Eq. 6 correction and moderate refresh help; very small buffers");
    println!("or disabled corrections degrade toward raw sign replay");
}
