//! Extension experiment — **recovery under vehicle departures** (the
//! paper's Challenge II, §II).
//!
//! Not a numbered figure in the paper, but its central architectural
//! claim: FedRecover-style schemes rely on online clients for exact
//! corrections and "do not work when clients leave FL", while this
//! paper's history-only recovery is indifferent to departures. We measure
//! exactly that: a fraction of vehicles permanently departs mid-training,
//! then a remaining vehicle requests erasure.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_churn [--seed N]`

use fuiov_baselines::{fedrecover, FedRecoverConfig};
use fuiov_bench::experiments::ours_config;
use fuiov_bench::Scenario;
use fuiov_core::unlearner::ClientPoolOracle;
use fuiov_core::{recover_set, NoOracle};
use fuiov_eval::table::{fmt3, Table};
use fuiov_fl::Client;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Extension: unlearning after vehicles depart (Challenge II) ==\n");

    let mut table = Table::new(&[
        "departed vehicles",
        "ours (history only)",
        "fedrecover (online survivors)",
        "fedrecover exact queries",
    ]);

    for departing in [0.0f32, 0.3, 0.6] {
        let mut sc = Scenario::digits(seed);
        sc.keep_full_gradients = true;
        sc.departing_fraction = departing;
        sc.departure_round = sc.rounds / 2;
        eprintln!("running with {:.0}% departures …", departing * 100.0);

        let departed = sc.departed_ids();
        let mut trained = sc.train();
        let forgotten = sc.forgotten_id();

        // Ours: no client participation, departures are irrelevant.
        let ours = {
            let cfg = ours_config(&trained.history, sc.lr);
            let out = recover_set(
                &trained.history,
                &[forgotten],
                &cfg,
                &mut NoOracle,
                |_, _| {},
            )
            .expect("ours");
            trained.accuracy_of(&out.params)
        };

        // FedRecover: exact corrections only from vehicles still in range.
        let (fr_acc, fr_queries) = {
            let cfg = FedRecoverConfig::new(sc.lr);
            let refs: Vec<&mut Box<dyn Client>> = trained
                .clients
                .iter_mut()
                .filter(|c| c.id() != forgotten && !departed.contains(&c.id()))
                .collect();
            let mut oracle = ClientPoolOracle::new(refs);
            let out = fedrecover(
                &trained.history,
                &trained.full_store,
                forgotten,
                &cfg,
                &mut oracle,
            )
            .expect("fedrecover");
            (trained.accuracy_of(&out.params), out.exact_queries)
        };

        table.row(&[
            format!("{} of {}", departed.len(), sc.n_clients),
            fmt3(ours),
            fmt3(fr_acc),
            fr_queries.to_string(),
        ]);
    }

    println!("{table}");
    println!("expected shape: ours is flat in the departure rate; fedrecover loses its");
    println!("exact-correction oracle as vehicles leave (queries drop) and degrades");
}
