//! Reproduces **Table I**: post-recovery global-model accuracy of
//! Retraining / FedRecover / FedRecovery / Ours on the two datasets.
//!
//! Paper reference values (real MNIST/GTSRB, 100 clients, 100 rounds):
//!
//! | Dataset | Retraining | FedRecover | FedRecovery | Ours  |
//! |---------|-----------|------------|-------------|-------|
//! | MNIST   | 0.873     | 0.869      | 0.825       | 0.859 |
//! | GTSRB   | 0.837     | 0.766      | 0.702       | 0.747 |
//!
//! Absolute numbers differ here (synthetic data, reduced scale — see
//! DESIGN.md §2); the claim under test is the *ordering*:
//! `Retraining ≥ FedRecover ≥ Ours ≥ FedRecovery`, with Ours close behind
//! FedRecover despite storing 16× less.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_table1 [--tiny] [--seed N]`

use fuiov_bench::{table1_row, Scenario};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Table I: accuracy of unlearning methods ==");
    println!("(paper: MNIST 0.873/0.869/0.825/0.859; GTSRB 0.837/0.766/0.702/0.747)\n");

    let scenarios: Vec<(Scenario, &'static str)> = if tiny {
        vec![(Scenario::tiny(seed), "digits(tiny)")]
    } else {
        vec![
            (Scenario::digits(seed), "digits (MNIST substitute)"),
            (Scenario::signs(seed), "signs (GTSRB substitute)"),
        ]
    };

    let mut table = Table::new(&[
        "dataset",
        "original",
        "unlearned",
        "retraining",
        "fedrecover",
        "fedrecovery",
        "ours",
    ]);
    for (sc, label) in scenarios {
        eprintln!("running {label} …");
        let row = table1_row(sc, label);
        table.row(&[
            row.dataset.to_string(),
            fmt3(row.original),
            fmt3(row.unlearned),
            fmt3(row.retraining),
            fmt3(row.fedrecover),
            fmt3(row.fedrecovery),
            fmt3(row.ours),
        ]);
    }
    println!("{table}");
    println!("expected shape: retraining >= fedrecover >= ours >= fedrecovery (within noise)");
}
