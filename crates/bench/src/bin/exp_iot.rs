//! Extension experiment — **the paper's §VI future work**: federated
//! unlearning on an IoT (vehicle-telemetry) task.
//!
//! The conclusion promises an evaluation "in the Internet of Things
//! scenarios"; this binary runs the full Table-I comparison on the
//! synthetic manoeuvre-classification dataset (3-axis accelerometer
//! windows). The unlearning pipeline is model- and data-agnostic (flat
//! parameter vectors), so nothing changes except the scenario.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_iot [--seed N]`

use fuiov_bench::experiments::ours_config;
use fuiov_bench::{table1_row, Scenario};
use fuiov_core::{recover_set, NoOracle};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Extension (§VI future work): unlearning on the IoT sensor task ==\n");

    eprintln!("running sensors scenario …");
    let sc = Scenario::sensors(seed);
    let row = table1_row(sc.clone(), "sensors (IoT manoeuvres)");

    // Sign-replay ablation: on this MLP task the curvature correction
    // built from direction-difference pairs mis-extrapolates, and the raw
    // direction replay recovers better (see EXPERIMENTS.md).
    let ours_sign_only = {
        let mut sc2 = sc;
        sc2.keep_full_gradients = true;
        let trained = sc2.train();
        let cfg = ours_config(&trained.history, sc2.lr).without_hessian();
        let out = recover_set(
            &trained.history,
            &[sc2.forgotten_id()],
            &cfg,
            &mut NoOracle,
            |_, _| {},
        )
        .expect("recover");
        trained.accuracy_of(&out.params)
    };

    let mut table = Table::new(&[
        "dataset",
        "original",
        "unlearned",
        "retraining",
        "fedrecover",
        "fedrecovery",
        "ours (Eq. 6)",
        "ours (sign replay)",
    ]);
    table.row(&[
        row.dataset.to_string(),
        fmt3(row.original),
        fmt3(row.unlearned),
        fmt3(row.retraining),
        fmt3(row.fedrecover),
        fmt3(row.fedrecovery),
        fmt3(row.ours),
        fmt3(ours_sign_only),
    ]);
    println!("{table}");
    println!("expected shape: the pipeline transfers to IoT unchanged (flat parameter");
    println!("vectors); note the Eq. 6 correction helps on the CNN tasks but not on");
    println!("this MLP task — the sign-replay variant is the stronger \"ours\" here");
    println!("\n{}", fuiov_obs::RunReport::capture());
}
