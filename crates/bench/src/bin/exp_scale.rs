//! Scaling experiment: hierarchical RSU/edge cohorts vs flat replay.
//!
//! Trains a group-history cohort at n ∈ {10³, 10⁴, 10⁵, 10⁶} vehicles
//! (fixed 1024-vehicle leaves, 4 KB history budget) and forgets one
//! vehicle two ways on identical inputs:
//!
//! - **subtree**: [`recover_vehicle`] — ghost-client forget scoped to the
//!   vehicle's leaf; every sibling leaf replays its sealed aggregate.
//! - **flat**: [`recover_vehicle_flat`] — the same forget replayed
//!   unscoped, Eq. 6 estimation for every leaf (what a hierarchy-blind
//!   server would do).
//!
//! Writes `BENCH_scale.json` (replay wall-clock, resident bytes, and the
//! estimated per-vehicle flat-history footprint) and prints the table.
//! Expected shape: subtree replay beats flat wherever the tree is real
//! (n ≥ 10⁴, i.e. more than one leaf), and resident bytes grow with
//! *leaves*, not vehicles.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_scale`

use fuiov_core::{recover_vehicle, recover_vehicle_flat, NoOracle, RecoveryConfig};
use fuiov_eval::table::Table;
use fuiov_fl::hierarchy::{run_cohort, CohortConfig, CohortRun};
use fuiov_fl::mobility::ChurnModel;
use fuiov_storage::TierConfig;
use std::fmt::Write as _;
use std::time::Instant;

const GROUP: usize = 1024;
const ROUNDS: usize = 8;
const DIM: usize = 512;

struct Row {
    n: usize,
    leaves: usize,
    tree_resident: usize,
    flat_resident_est: usize,
    subtree_ns: u128,
    flat_ns: u128,
    sibling_reuses: usize,
    rounds_replayed: usize,
}

fn cohort(n: usize) -> CohortRun {
    // Churned cohort: most vehicles are present from round 0, the rest
    // stream in. A mid-training joiner gives the forget a real backtrack
    // point (F > 0), so replay exercises Eq. 6 estimation rather than
    // degenerating to pure direction replay.
    run_cohort(
        CohortConfig::new(n)
            .group_size(GROUP)
            .dim(DIM)
            .rounds(ROUNDS)
            .seed(11)
            .churn(ChurnModel {
                arrival_prob: 0.3,
                departure_prob: 0.0,
                dropout_prob: 0.0,
                initial_active: n / 2,
            })
            .tier(TierConfig::bounded(4096)),
    )
}

/// A vehicle that joined mid-training (round 3+): its forget backtracks
/// to a round with seedable history on both sides.
fn late_joiner(run: &CohortRun) -> usize {
    let lazy = run.lazy_churn().expect("cohort has churn");
    (0..run.cfg.n_vehicles)
        .find(|&v| {
            let j = lazy.joined(v);
            (3..ROUNDS - 2).contains(&j)
        })
        .expect("some vehicle joins mid-training")
}

/// Median wall-clock of `iters` runs of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// What per-vehicle history would cost resident at this scale: one join
/// entry, one weight, and `ROUNDS` packed 2-bit directions per vehicle
/// (map overhead counted at a conservative 48 B/client).
fn flat_resident_estimate(n: usize) -> usize {
    n * (ROUNDS * DIM.div_ceil(4) + 48)
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    println!("== Hierarchical subtree replay vs flat replay ==");
    println!("(group {GROUP}, {ROUNDS} rounds, dim {DIM}, 4 KB history budget)\n");

    let mut rows = Vec::new();
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let run = cohort(n);
        let cfg = RecoveryConfig::new(run.cfg.lr);
        let vehicle = late_joiner(&run);
        let iters = if n >= 1_000_000 { 3 } else { 5 };
        let rec = recover_vehicle(&run, vehicle, &cfg, &mut NoOracle).expect("subtree recovery");
        let subtree_ns = median_ns(iters, || {
            recover_vehicle(&run, vehicle, &cfg, &mut NoOracle).expect("subtree recovery");
        });
        let flat_ns = median_ns(iters, || {
            recover_vehicle_flat(&run, vehicle, &cfg, &mut NoOracle).expect("flat recovery");
        });
        rows.push(Row {
            n,
            leaves: run.cfg.leaf_count(),
            tree_resident: run.peak_resident_bytes,
            flat_resident_est: flat_resident_estimate(n),
            subtree_ns,
            flat_ns,
            sibling_reuses: rec.outcome.sibling_reuses,
            rounds_replayed: rec.outcome.rounds_replayed,
        });
    }

    let mut table = Table::new(&[
        "vehicles",
        "leaves",
        "subtree replay",
        "flat replay",
        "speedup",
        "tree resident",
        "flat resident (est)",
    ]);
    for r in &rows {
        table.row(&[
            r.n.to_string(),
            r.leaves.to_string(),
            format!("{:.2} ms", r.subtree_ns as f64 / 1e6),
            format!("{:.2} ms", r.flat_ns as f64 / 1e6),
            format!("{:.2}x", r.flat_ns as f64 / r.subtree_ns as f64),
            human(r.tree_resident),
            human(r.flat_resident_est),
        ]);
    }
    println!("{table}");
    println!("expected shape: speedup > 1 at every n >= 10^4 (more than one leaf)");

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(
        json,
        "    \"experiment\": \"exp_scale\",\n    \"group_size\": {GROUP},\n    \"rounds\": {ROUNDS},\n    \"dim\": {DIM},\n    \"history_budget_bytes\": 4096,\n    \"notes\": \"subtree = recover_vehicle (scope = forgotten vehicle's leaf, siblings replay sealed aggregates); flat = recover_vehicle_flat (unscoped, every leaf estimated). flat_resident_bytes_est = what per-vehicle sign history would keep resident (2-bit dirs x rounds + 48 B map overhead per vehicle); tree_peak_resident_bytes is measured during training.\""
    );
    json.push_str("  },\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n_vehicles\": {}, \"leaves\": {}, \"subtree_replay_ns\": {}, \"flat_replay_ns\": {}, \"speedup\": {:.3}, \"tree_peak_resident_bytes\": {}, \"flat_resident_bytes_est\": {}, \"rounds_replayed\": {}, \"sibling_reuses\": {}}}{}",
            r.n,
            r.leaves,
            r.subtree_ns,
            r.flat_ns,
            r.flat_ns as f64 / r.subtree_ns as f64,
            r.tree_resident,
            r.flat_resident_est,
            r.rounds_replayed,
            r.sibling_reuses,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");

    for r in &rows {
        if r.leaves > 1 {
            assert!(
                r.flat_ns > r.subtree_ns,
                "subtree replay must beat flat at n = {} ({} vs {} ns)",
                r.n,
                r.subtree_ns,
                r.flat_ns
            );
        }
    }
}
