//! Reproduces **Fig. 2**: recovered-model accuracy vs the clip threshold
//! `L` (with δ fixed at 1e-6).
//!
//! Paper reference: optimum at `L = 1` (86 % on MNIST); smaller `L`
//! throttles the recovery step size, larger `L` amplifies estimation
//! error — an interior maximum.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_fig2 [--tiny] [--seed N]`

use fuiov_bench::{fig2, Scenario};
use fuiov_eval::table::{fmt3, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Fig. 2: accuracy after recovery vs clip threshold L (δ = 1e-6) ==");
    println!("(paper: interior optimum at L = 1, accuracy 86%)\n");

    let sc = if tiny {
        Scenario::tiny(seed)
    } else {
        Scenario::digits(seed)
    };
    eprintln!("training once …");
    let trained = sc.train();
    let baseline = trained.accuracy_of(&trained.final_params);

    let l_values = [0.01f32, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0];
    eprintln!("sweeping L over {l_values:?} …");
    let pts = fig2(&trained, &l_values);

    let mut table = Table::new(&["L", "recovered accuracy"]);
    for (l, acc) in &pts {
        table.row(&[format!("{l}"), fmt3(*acc)]);
    }
    println!("{table}");
    println!("original (pre-unlearning) accuracy: {}", fmt3(baseline));
    let best = pts
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty sweep");
    println!("best L = {} (accuracy {})", best.0, fmt3(best.1));
    println!("expected shape: accuracy rises with L, peaks at an interior value, then declines");
}
