//! Diagnostic traces: accuracy over training rounds, then accuracy over
//! recovery rounds for the paper's scheme with and without the Eq. 6
//! Hessian correction (the sign-replay ablation from DESIGN.md §5).
//!
//! Not a paper figure; used to sanity-check recovery dynamics and pick
//! reduced-scale hyper-parameters.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_trace [--tiny] [--seed N]`

use fuiov_bench::Scenario;
use fuiov_core::{recover_set, NoOracle, RecoveryConfig};
use fuiov_fl::Server;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let signs = args.iter().any(|a| a == "--signs");
    let sensors = args.iter().any(|a| a == "--sensors");
    let sc = if tiny {
        Scenario::tiny(seed)
    } else if signs {
        Scenario::signs(seed)
    } else if sensors {
        Scenario::sensors(seed)
    } else {
        Scenario::digits(seed)
    };

    // Training curve.
    let spec = sc.model_spec();
    let init = spec.build(sc.seed).params();
    let mut clients = sc.build_clients();
    let schedule = sc.schedule();
    let mut server = Server::new(sc.fl_config(), init);
    let trained_probe = sc.clone();
    let test = {
        // Reuse the scenario's test set by training a throwaway copy.
        trained_probe.train().test
    };
    let eval = |params: &[f32]| {
        let mut m = spec.build(0);
        m.set_params(params);
        fuiov_eval::test_accuracy(&mut m, &test)
    };

    println!("== training curve ==");
    let stride = (sc.rounds / 10).max(1);
    server.train_with(&mut clients, &schedule, |t, params| {
        if t % stride == 0 || t + 1 == sc.rounds {
            println!("round {t:>4}: acc {:.3}", eval(params));
        }
    });
    let (final_params, history, _) = server.into_parts();
    println!("final: acc {:.3}", eval(&final_params));

    let forgotten = sc.forgotten_id();
    let bt = fuiov_core::backtrack(&history, forgotten).expect("backtrack");
    println!(
        "\nbacktracked to round {}: acc {:.3}",
        bt.join_round,
        eval(&bt.params)
    );
    let calibrated = fuiov_core::calibrate_lr(&history);
    println!(
        "calibrated recovery lr: {calibrated:?} (training lr {})",
        sc.lr
    );
    println!("\n== recovery accuracy vs recovery lr (with / without Hessian) ==");
    let mut lrs = vec![sc.lr, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0002];
    if let Some(c) = calibrated {
        lrs.push(c);
    }
    for lr_rec in lrs {
        let with = recover_set(
            &history,
            &[forgotten],
            &RecoveryConfig::new(lr_rec),
            &mut NoOracle,
            |_, _| {},
        )
        .expect("recover");
        let without = recover_set(
            &history,
            &[forgotten],
            &RecoveryConfig::new(lr_rec).without_hessian(),
            &mut NoOracle,
            |_, _| {},
        )
        .expect("recover");
        println!(
            "lr_rec {lr_rec:>7}: ours {:.3}   sign-replay {:.3}",
            eval(&with.params),
            eval(&without.params)
        );
    }
}
