//! Reproduces the paper's **storage-overhead claim** (§I, §II, §VI):
//! storing only gradient directions (2 bits/element) "can spare
//! approximately 95 % of storage overhead" vs full `f32` gradients.
//!
//! Pure arithmetic on real packed sizes: 2 bits vs 32 bits is a 93.75 %
//! reduction; the paper's ~95 % additionally counts server-side overheads
//! that scale with stored bytes.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_storage`

use fuiov_bench::storage_rows;
use fuiov_eval::table::Table;
use fuiov_nn::ModelSpec;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    println!("== Storage overhead: full f32 gradients vs 2-bit directions ==");
    println!("(paper claim: ~95% savings; raw 2/32 bits = 93.75%)\n");

    // The paper's fleet scale: n = 100 vehicles, T = 100 rounds.
    let n_clients = 100;
    let rounds = 100;

    let models = [
        (
            "tiny test MLP",
            ModelSpec::Mlp {
                inputs: 144,
                hidden: 32,
                classes: 10,
            }
            .param_count(),
        ),
        ("paper MNIST CNN (28×28)", ModelSpec::mnist().param_count()),
        (
            "paper GTSRB CNN (32×32)",
            ModelSpec::gtsrb(12).param_count(),
        ),
        ("1M-param model", 1_000_000),
    ];

    let rows = storage_rows(&models, n_clients, rounds, 0);
    let mut table = Table::new(&[
        "model",
        "params",
        "full/client·round",
        "packed/client·round",
        "full total (100×100)",
        "packed total",
        "savings",
    ]);
    for r in &rows {
        table.row(&[
            r.model.to_string(),
            r.params.to_string(),
            human(r.full_bytes),
            human(r.packed_bytes),
            human(r.full_total),
            human(r.packed_total),
            format!("{:.2}%", r.savings * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected shape: ≥93.75% savings at every model size (16× reduction)");
}
