//! Extension experiment — **communication accounting**: what a training
//! run transmits over the vehicle–RSU links, and what RSA-style sign
//! uploads would save.
//!
//! The paper's storage trick mirrors RSA's communication trick; this
//! binary measures both sides of that analogy on a live run, including
//! the effect of per-round client sampling.
//!
//! Usage: `cargo run --release -p fuiov-bench --bin exp_comms [--seed N]`

use fuiov_bench::Scenario;
use fuiov_eval::table::Table;
use fuiov_fl::{CommsReport, Server};

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("== Extension: vehicle–RSU communication accounting ==\n");

    let mut table = Table::new(&[
        "client fraction",
        "vehicle-rounds",
        "downlink",
        "uplink (f32)",
        "uplink (2-bit signs)",
        "uplink savings",
    ]);

    for fraction in [1.0f32, 0.5, 0.2] {
        eprintln!("running with client fraction {fraction} …");
        let sc = Scenario::digits(seed);
        let mut clients = sc.build_clients();
        let cfg = sc.fl_config().client_fraction(fraction);
        let mut server =
            Server::new(cfg, sc.model_spec().build(seed).params()).with_sampling_seed(seed);
        server.train(&mut clients, &sc.schedule());
        let report = CommsReport::from_summaries(sc.model_spec().param_count(), server.summaries());
        table.row(&[
            format!("{fraction}"),
            report.total_participations().to_string(),
            human(report.total_down()),
            human(report.total_up_full()),
            human(report.total_up_sign()),
            format!("{:.2}%", report.uplink_savings() * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected shape: sampling scales traffic linearly; sign uploads save 93.75%");
    println!("of uplink at any sampling rate — the communication face of the storage claim");
}
