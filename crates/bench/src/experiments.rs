//! The experiment implementations behind every table and figure.
//!
//! Each function runs one of the paper's §V experiments against a
//! [`Scenario`] and returns structured results; the `exp_*` binaries print
//! them at reduced paper scale and the Criterion benches time them at tiny
//! scale. See `DESIGN.md` §4 for the experiment index.

use crate::scenario::{Attack, Scenario, Trained};
use fuiov_attacks::{backdoor_asr, label_flip_asr};
use fuiov_baselines::{fedrecover, fedrecovery, retrain, FedRecoverConfig, FedRecoveryConfig};
use fuiov_core::unlearner::ClientPoolOracle;
use fuiov_core::{backtrack_set, calibrate_lr, recover_set, NoOracle, RecoveryConfig, Unlearner};
use fuiov_fl::Client;
use fuiov_storage::GradientDirection;
use fuiov_tensor::rng::rng_for;
use rand::Rng;

/// Boost applied on top of [`calibrate_lr`]: clipped, Hessian-corrected
/// estimates partially cancel in aggregation, so realised replay steps are
/// smaller than the calibration predicts. Tuned once with `exp_trace`
/// (optimum sat at ~2× the calibrated rate on both datasets) and held
/// fixed across every experiment and seed.
pub const CALIBRATION_BOOST: f32 = 2.0;

/// The recovery configuration "ours" runs with: paper defaults (`L = 1`,
/// `s = 2`, refresh 21) at the calibrated sign-replay learning rate (see
/// [`calibrate_lr`]; falls back to the training rate when the history is
/// too thin to calibrate).
pub fn ours_config(history: &fuiov_storage::HistoryStore, training_lr: f32) -> RecoveryConfig {
    let lr = calibrate_lr(history).map_or(training_lr, |c| c * CALIBRATION_BOOST);
    RecoveryConfig::new(lr)
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset label ("digits" / "signs").
    pub dataset: &'static str,
    /// Accuracy of the original (pre-unlearning) global model.
    pub original: f32,
    /// Accuracy right after backtracking (unlearned, unrecovered).
    pub unlearned: f32,
    /// Retraining-from-scratch baseline.
    pub retraining: f32,
    /// FedRecover baseline.
    pub fedrecover: f32,
    /// FedRecovery baseline.
    pub fedrecovery: f32,
    /// The paper's scheme (ours).
    pub ours: f32,
    /// Mean pairwise client sign-agreement over the run — the
    /// heterogeneity diagnostic behind the non-IID results.
    pub sign_agreement: f32,
}

/// Runs the Table I comparison for one scenario.
///
/// The scenario is forced to keep full gradients (FedRecover/FedRecovery
/// need them); "ours" uses only the sign history, exactly as in the paper.
///
/// # Panics
///
/// Panics if any stage of the pipeline fails (experiment configurations
/// are constructed to be valid).
pub fn table1_row(mut sc: Scenario, dataset: &'static str) -> Table1Row {
    sc.keep_full_gradients = true;
    let mut trained = sc.train();
    let forgotten = sc.forgotten_id();

    let original = trained.accuracy_of(&trained.final_params);
    let unlearned = {
        let bt = backtrack_set(&trained.history, &[forgotten]).expect("backtrack");
        trained.accuracy_of(&bt.params)
    };

    // Ours: sign-only, no client involvement.
    let ours = {
        let unlearner = Unlearner::new(&trained.history, ours_config(&trained.history, sc.lr));
        let out = unlearner.forget_and_recover(forgotten).expect("ours");
        trained.accuracy_of(&out.params)
    };

    // FedRecover: full gradients + periodic exact corrections from the
    // live clients (all assumed online, per §V-A3).
    let fedrecover_acc = {
        let cfg = FedRecoverConfig::new(sc.lr);
        let refs: Vec<&mut Box<dyn Client>> = trained
            .clients
            .iter_mut()
            .filter(|c| c.id() != forgotten)
            .collect();
        let mut oracle = ClientPoolOracle::new(refs);
        let out = fedrecover(
            &trained.history,
            &trained.full_store,
            forgotten,
            &cfg,
            &mut oracle,
        )
        .expect("fedrecover");
        trained.accuracy_of(&out.params)
    };

    // FedRecovery: residual removal + noise.
    let fedrecovery_acc = {
        let cfg = FedRecoveryConfig::new(sc.lr).noise_sigma(1e-3);
        let out = fedrecovery(
            &trained.history,
            &trained.full_store,
            forgotten,
            &cfg,
            sc.seed,
        )
        .expect("fedrecovery");
        trained.accuracy_of(&out.params)
    };

    // Retraining from scratch on remaining clients (fresh init).
    let retraining = {
        let init = trained.spec.build(sc.seed.wrapping_add(1)).params();
        let mut clients = sc.build_clients();
        let params = retrain(
            init,
            sc.fl_config(),
            &mut clients,
            &trained.schedule,
            forgotten,
        );
        trained.accuracy_of(&params)
    };

    let agreement = {
        let curve = fuiov_eval::sign_agreement_curve(&trained.history);
        let vals: Vec<f32> = curve.iter().map(|&(_, a)| a).collect();
        fuiov_tensor::stats::mean(&vals)
    };

    Table1Row {
        dataset,
        original,
        unlearned,
        retraining,
        fedrecover: fedrecover_acc,
        fedrecovery: fedrecovery_acc,
        ours,
        sign_agreement: agreement,
    }
}

/// Fig. 1 result: attack success rate at the three pipeline stages.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Attack label ("label-flip" / "backdoor").
    pub attack: &'static str,
    /// ASR of the poisoned final model.
    pub asr_before: f32,
    /// ASR right after backtracking away the attackers.
    pub asr_after_forget: f32,
    /// ASR after recovery (must not rebound — goal (ii) of §V).
    pub asr_after_recover: f32,
    /// Clean accuracy of the poisoned model.
    pub acc_before: f32,
    /// Clean accuracy after recovery.
    pub acc_after_recover: f32,
}

/// Runs the Fig. 1 poisoning-recovery experiment for one attacked
/// scenario: train with malicious clients, erase *all* of them, recover,
/// measuring ASR at each stage.
///
/// # Panics
///
/// Panics if the scenario has no attack configured, or a pipeline stage
/// fails.
pub fn fig1(sc: &Scenario, label: &'static str) -> Fig1Result {
    let attack = sc.attack.expect("fig1 requires an attack scenario");
    let trained = sc.train();
    let malicious = sc.malicious_ids();
    assert!(!malicious.is_empty(), "fig1 requires malicious clients");

    let asr = |params: &[f32]| -> f32 {
        let mut m = trained.model_with(params);
        match &attack {
            Attack::LabelFlip(a) => label_flip_asr(&mut m, &trained.test, a),
            Attack::Backdoor(a) => backdoor_asr(&mut m, &trained.test, a),
        }
    };

    let asr_before = asr(&trained.final_params);
    let acc_before = trained.accuracy_of(&trained.final_params);

    let bt = backtrack_set(&trained.history, &malicious).expect("backtrack");
    let asr_after_forget = asr(&bt.params);

    let out = recover_set(
        &trained.history,
        &malicious,
        &ours_config(&trained.history, sc.lr),
        &mut NoOracle,
        |_, _| {},
    )
    .expect("recover");
    let asr_after_recover = asr(&out.params);
    let acc_after_recover = trained.accuracy_of(&out.params);

    Fig1Result {
        attack: label,
        asr_before,
        asr_after_forget,
        asr_after_recover,
        acc_before,
        acc_after_recover,
    }
}

/// Fig. 2: recovered accuracy as a function of the clip threshold `L`
/// (δ fixed by the trained scenario). Reuses one training run.
pub fn fig2(trained: &Trained, l_values: &[f32]) -> Vec<(f32, f32)> {
    let sc = &trained.scenario;
    let forgotten = sc.forgotten_id();
    l_values
        .iter()
        .map(|&l| {
            let cfg = ours_config(&trained.history, sc.lr).clip_threshold(l);
            let out = recover_set(
                &trained.history,
                &[forgotten],
                &cfg,
                &mut NoOracle,
                |_, _| {},
            )
            .expect("recover");
            (l, trained.accuracy_of(&out.params))
        })
        .collect()
}

/// Fig. 3: recovered accuracy as a function of the sign threshold `δ`
/// (`L` fixed at the paper's 1.0). Requires the trained scenario to have
/// kept full gradients — each δ re-quantises the same training run.
///
/// # Panics
///
/// Panics if the scenario did not keep full gradients.
pub fn fig3(trained: &Trained, deltas: &[f32]) -> Vec<(f32, f32)> {
    assert!(
        trained.full_store.bytes() > 0,
        "fig3 needs keep_full_gradients = true"
    );
    let sc = &trained.scenario;
    let forgotten = sc.forgotten_id();
    deltas
        .iter()
        .map(|&delta| {
            let history = trained.history.requantized(&trained.full_store, delta);
            // Calibrate per δ so the sweep isolates the information loss
            // of quantisation rather than step-size artefacts.
            let cfg = ours_config(&history, sc.lr);
            let out = recover_set(&history, &[forgotten], &cfg, &mut NoOracle, |_, _| {})
                .expect("recover");
            (delta, trained.accuracy_of(&out.params))
        })
        .collect()
}

/// One row of the storage-overhead report (§I's "~95 %" claim).
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Model label.
    pub model: &'static str,
    /// Parameter count `d`.
    pub params: usize,
    /// Bytes per client-round, full `f32` storage.
    pub full_bytes: usize,
    /// Bytes per client-round, packed 2-bit directions.
    pub packed_bytes: usize,
    /// Total full bytes for `n_clients × rounds`.
    pub full_total: usize,
    /// Total packed bytes for `n_clients × rounds`.
    pub packed_total: usize,
    /// Savings ratio.
    pub savings: f64,
}

/// Computes the storage comparison for a set of model sizes at the given
/// fleet scale.
pub fn storage_rows(
    models: &[(&'static str, usize)],
    n_clients: usize,
    rounds: usize,
    seed: u64,
) -> Vec<StorageRow> {
    models
        .iter()
        .map(|&(label, d)| {
            let mut rng = rng_for(seed, 0xBEEF);
            let grad: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect();
            let dir = GradientDirection::quantize(&grad, 1e-6);
            let full = dir.full_f32_byte_size();
            let packed = dir.byte_size();
            StorageRow {
                model: label,
                params: d,
                full_bytes: full,
                packed_bytes: packed,
                full_total: full * n_clients * rounds,
                packed_total: packed * n_clients * rounds,
                savings: dir.savings_ratio(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_attacks::LabelFlip;

    #[test]
    fn table1_tiny_produces_sane_accuracies() {
        let row = table1_row(Scenario::tiny(1), "digits");
        for v in [
            row.original,
            row.unlearned,
            row.retraining,
            row.fedrecover,
            row.fedrecovery,
            row.ours,
        ] {
            assert!((0.0..=1.0).contains(&v), "accuracy out of range: {row:?}");
        }
        // Recovery should not be worse than the raw backtracked model by a
        // wide margin (it replays training).
        assert!(row.ours >= row.unlearned - 0.1, "{row:?}");
    }

    #[test]
    fn fig1_tiny_label_flip_pipeline_runs() {
        let mut sc = Scenario::tiny(3);
        sc.attack = Some(Attack::LabelFlip(LabelFlip::paper_default()));
        sc.malicious_fraction = 0.4;
        sc.rounds = 10;
        let r = fig1(&sc, "label-flip");
        for v in [r.asr_before, r.asr_after_forget, r.asr_after_recover] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn fig2_sweep_returns_one_point_per_l() {
        let trained = Scenario::tiny(5).train();
        let pts = fig2(&trained, &[0.1, 1.0]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 0.1);
    }

    #[test]
    fn fig3_sweep_requantizes() {
        let trained = Scenario::tiny(6).train();
        let pts = fig3(&trained, &[1e-8, 1e-2]);
        assert_eq!(pts.len(), 2);
        // Extreme delta throws away every update; accuracies may differ.
        assert!(pts.iter().all(|(_, a)| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn storage_rows_report_16x() {
        let rows = storage_rows(&[("toy", 1000)], 10, 10, 0);
        assert_eq!(rows[0].full_bytes, 4000);
        assert_eq!(rows[0].packed_bytes, 250);
        assert_eq!(rows[0].full_total, 400_000);
        assert!((rows[0].savings - 0.9375).abs() < 1e-9);
    }
}
