//! Shared experiment harness: builds and trains the paper's §V scenarios.
//!
//! Every table/figure binary (and the Criterion benches) goes through this
//! module, so the scenario construction — datasets, partitioning, attacker
//! selection, the forgotten client's pinned join round `F = 2`, recorded
//! history — is identical everywhere and fully determined by the seed.
//!
//! Scale note: the paper trains 100 clients for 100 rounds on 28×28/32×32
//! images. The `*_paper_shaped` constructors default to a reduced scale
//! (fewer clients, 16×16 images, fewer rounds) so the whole suite runs in
//! minutes on a laptop; every knob is public, so paper scale is one
//! assignment away (see `EXPERIMENTS.md` for the configurations used).

use fuiov_attacks::{backdoor_client, label_flip_client, Backdoor, LabelFlip};
use fuiov_data::{Dataset, DigitStyle, SensorStyle, SignStyle};
use fuiov_fl::mobility::{ChurnSchedule, Membership};
use fuiov_fl::{Client, FlConfig, HonestClient, Server};
use fuiov_nn::{ModelSpec, Sequential};
use fuiov_storage::history::FullGradientStore;
use fuiov_storage::{ClientId, HistoryStore, Round};
use fuiov_tensor::rng::{rng_for, streams};
use rand::seq::SliceRandom;

/// Which synthetic dataset a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// MNIST substitute (1×16×16 by default here).
    Digits,
    /// GTSRB substitute (3×16×16 by default here).
    Signs,
    /// IoT sensor substitute (3×1×len manoeuvre windows) — the paper's
    /// §VI future-work extension.
    Sensors,
}

/// The poisoning attack applied by malicious clients, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// Label-flip (paper: 7 → 1).
    LabelFlip(LabelFlip),
    /// Backdoor trigger (paper: 3×3 patch → class 2).
    Backdoor(Backdoor),
}

/// A fully-specified experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Square image side length.
    pub image_size: usize,
    /// Number of vehicles.
    pub n_clients: usize,
    /// Training samples per vehicle.
    pub samples_per_client: usize,
    /// Held-out test-set size.
    pub n_test: usize,
    /// Federated rounds `T`.
    pub rounds: Round,
    /// Server/client learning rate `η`.
    pub lr: f32,
    /// Client mini-batch size.
    pub batch_size: usize,
    /// Sign threshold `δ`.
    pub sign_delta: f32,
    /// Join round `F` pinned for the forgotten client(s).
    pub forgotten_join_round: Round,
    /// Attack specification (malicious clients poison their data).
    pub attack: Option<Attack>,
    /// Fraction of clients that are malicious (paper: 0.2).
    pub malicious_fraction: f32,
    /// Label-skew for the federated split: `None` = IID (the paper's
    /// setting); `Some(alpha)` = Dirichlet non-IID with concentration
    /// `alpha` (smaller = more skewed).
    pub non_iid_alpha: Option<f64>,
    /// Fraction of non-forgotten vehicles that permanently depart after
    /// [`Scenario::departure_round`] (0.0 = everyone stays — the §V-A3
    /// comparison setting). Used by the churn extension experiment.
    pub departing_fraction: f32,
    /// Round after which departing vehicles leave.
    pub departure_round: Round,
    /// Extra curated source-class samples each label-flip attacker adds
    /// to its shard before flipping (attackers collecting extra data of
    /// the class they target — needed because the synthetic digits' 7/1
    /// are more separable than MNIST's, see DESIGN.md §2).
    pub attacker_data_boost: usize,
    /// Keep full `f32` gradients too (needed by baselines).
    pub keep_full_gradients: bool,
    /// Hierarchical aggregation fan-out (`None` = flat FedAvg, or
    /// whatever `FUIOV_TREE_FANOUT` selects at server construction).
    pub tree_fanout: Option<usize>,
    /// Per-round client sampling fraction (`None` = everyone
    /// participates, or the `FUIOV_SAMPLE_FRAC` environment default).
    pub sample_frac: Option<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// Reduced-scale digits (MNIST-substitute) scenario shaped like the
    /// paper's MNIST setup: CNN with 2 conv + 2 fc, FedAvg, `F = 2`,
    /// `δ = 1e-6`.
    pub fn digits(seed: u64) -> Self {
        Scenario {
            dataset: DatasetKind::Digits,
            image_size: 16,
            n_clients: 10,
            samples_per_client: 50,
            n_test: 300,
            rounds: 100,
            lr: 0.02,
            batch_size: 50,
            sign_delta: 1e-6,
            forgotten_join_round: 2,
            attack: None,
            malicious_fraction: 0.0,
            non_iid_alpha: None,
            departing_fraction: 0.0,
            departure_round: 0,
            attacker_data_boost: 25,
            keep_full_gradients: false,
            tree_fanout: None,
            sample_frac: None,
            seed,
        }
    }

    /// Reduced-scale signs (GTSRB-substitute) scenario shaped like the
    /// paper's GTSRB setup: CNN with 2 conv + 1 fc.
    pub fn signs(seed: u64) -> Self {
        Scenario {
            dataset: DatasetKind::Signs,
            image_size: 16,
            n_clients: 10,
            samples_per_client: 48,
            n_test: 360,
            rounds: 100,
            lr: 0.02,
            batch_size: 48,
            sign_delta: 1e-6,
            forgotten_join_round: 2,
            attack: None,
            malicious_fraction: 0.0,
            non_iid_alpha: None,
            departing_fraction: 0.0,
            departure_round: 0,
            attacker_data_boost: 48,
            keep_full_gradients: false,
            tree_fanout: None,
            sample_frac: None,
            seed,
        }
    }

    /// Full paper-scale digits scenario: 100 vehicles, 28×28 images, 100
    /// rounds, the paper's exact MNIST architecture. Expect tens of
    /// minutes in release mode — the `exp_*` binaries default to
    /// [`Scenario::digits`] instead; switch by editing the binary or use
    /// this from your own driver.
    pub fn digits_paper(seed: u64) -> Self {
        Scenario {
            image_size: 28,
            n_clients: 100,
            samples_per_client: 60,
            n_test: 1000,
            ..Scenario::digits(seed)
        }
    }

    /// Full paper-scale signs scenario (100 vehicles, 32×32, 100 rounds).
    pub fn signs_paper(seed: u64) -> Self {
        Scenario {
            image_size: 32,
            n_clients: 100,
            samples_per_client: 60,
            n_test: 1200,
            ..Scenario::signs(seed)
        }
    }

    /// The IoT extension scenario (§VI future work): manoeuvre windows of
    /// length `image_size`, MLP model.
    pub fn sensors(seed: u64) -> Self {
        Scenario {
            dataset: DatasetKind::Sensors,
            image_size: 64, // window length
            n_clients: 10,
            samples_per_client: 48,
            n_test: 240,
            rounds: 100,
            lr: 0.02,
            batch_size: 48,
            sign_delta: 1e-6,
            forgotten_join_round: 2,
            attack: None,
            malicious_fraction: 0.0,
            non_iid_alpha: None,
            departing_fraction: 0.0,
            departure_round: 0,
            attacker_data_boost: 25,
            keep_full_gradients: false,
            tree_fanout: None,
            sample_frac: None,
            seed,
        }
    }

    /// A minimal MLP-on-digits scenario for tests and Criterion benches
    /// (seconds, not minutes).
    pub fn tiny(seed: u64) -> Self {
        Scenario {
            dataset: DatasetKind::Digits,
            image_size: 12,
            n_clients: 5,
            samples_per_client: 20,
            n_test: 100,
            rounds: 12,
            lr: 0.1,
            batch_size: 20,
            sign_delta: 1e-6,
            forgotten_join_round: 2,
            attack: None,
            malicious_fraction: 0.0,
            non_iid_alpha: None,
            departing_fraction: 0.0,
            departure_round: 0,
            attacker_data_boost: 20,
            keep_full_gradients: true,
            tree_fanout: None,
            sample_frac: None,
            seed,
        }
    }

    /// The model architecture for this scenario (paper §V-A1 shapes).
    pub fn model_spec(&self) -> ModelSpec {
        match self.dataset {
            DatasetKind::Digits => {
                if self.image_size <= 12 {
                    // Test scale: an MLP keeps CI fast; same code path for
                    // unlearning (flat parameter vectors).
                    ModelSpec::Mlp {
                        inputs: self.image_size * self.image_size,
                        hidden: 32,
                        classes: 10,
                    }
                } else {
                    ModelSpec::CnnTwoFc {
                        in_ch: 1,
                        h: self.image_size,
                        w: self.image_size,
                        c1: 8,
                        c2: 16,
                        hidden: 64,
                        classes: 10,
                    }
                }
            }
            DatasetKind::Signs => ModelSpec::CnnOneFc {
                in_ch: 3,
                h: self.image_size,
                w: self.image_size,
                c1: 8,
                c2: 16,
                classes: fuiov_data::synth_signs::NUM_CLASSES,
            },
            DatasetKind::Sensors => ModelSpec::Mlp {
                inputs: 3 * self.image_size,
                hidden: 48,
                classes: fuiov_data::synth_sensors::NUM_CLASSES,
            },
        }
    }

    fn generate_pool(&self) -> (Dataset, Dataset) {
        let total = self.n_clients * self.samples_per_client;
        match self.dataset {
            DatasetKind::Digits => {
                // Slightly milder jitter than the unit-test default: the
                // reduced 16×16 resolution already destroys fine detail.
                let style = DigitStyle {
                    size: self.image_size,
                    noise_sigma: 0.10,
                    max_rotation: 0.15,
                    ..Default::default()
                };
                let train = Dataset::digits(total, &style, self.seed);
                let test = Dataset::digits(self.n_test, &style, self.seed.wrapping_add(0xD15EA5E));
                (train, test)
            }
            DatasetKind::Signs => {
                let style = SignStyle {
                    size: self.image_size,
                    ..Default::default()
                };
                let train = Dataset::signs(total, &style, self.seed);
                let test = Dataset::signs(self.n_test, &style, self.seed.wrapping_add(0xD15EA5E));
                (train, test)
            }
            DatasetKind::Sensors => {
                let style = SensorStyle {
                    len: self.image_size,
                    ..Default::default()
                };
                let train = Dataset::sensors(total, &style, self.seed);
                let test = Dataset::sensors(self.n_test, &style, self.seed.wrapping_add(0xD15EA5E));
                (train, test)
            }
        }
    }

    /// The malicious client ids for this scenario (deterministic sample
    /// of `malicious_fraction · n_clients`, per the paper's "randomly
    /// sample 20 % of clients").
    pub fn malicious_ids(&self) -> Vec<ClientId> {
        let k = ((self.n_clients as f32) * self.malicious_fraction).round() as usize;
        let mut ids: Vec<ClientId> = (0..self.n_clients).collect();
        ids.shuffle(&mut rng_for(self.seed, streams::ATTACK + 99));
        let mut chosen: Vec<ClientId> = ids.into_iter().take(k).collect();
        chosen.sort_unstable();
        chosen
    }

    /// The client designated for (single-client) forgetting: the first
    /// malicious client under attack, otherwise the last client id.
    pub fn forgotten_id(&self) -> ClientId {
        if self.attack.is_some() {
            self.malicious_ids()
                .first()
                .copied()
                .unwrap_or(self.n_clients - 1)
        } else {
            self.n_clients - 1
        }
    }

    /// The federated partition: per-client sample indices into the
    /// training pool (IID or Dirichlet, per [`Scenario::non_iid_alpha`]).
    fn partition(&self, train: &Dataset) -> Vec<Vec<usize>> {
        match self.non_iid_alpha {
            None => fuiov_data::partition::partition_iid(train.len(), self.n_clients, self.seed),
            Some(alpha) => fuiov_data::partition::partition_dirichlet(
                train.labels(),
                self.n_clients,
                alpha,
                self.seed,
            ),
        }
    }

    /// The raw (pre-poisoning) training shard of one client under this
    /// scenario's partition — the "member" set for membership-inference
    /// probes against that client.
    ///
    /// # Panics
    ///
    /// Panics if `client >= n_clients`.
    pub fn client_shard(&self, client: ClientId) -> Dataset {
        assert!(client < self.n_clients, "client_shard: no client {client}");
        let (train, _) = self.generate_pool();
        let parts = self.partition(&train);
        train.subset(&parts[client])
    }

    /// Builds the client pool (with poisoned datasets for malicious ids).
    pub fn build_clients(&self) -> Vec<Box<dyn Client>> {
        let (train, _) = self.generate_pool();
        let parts = self.partition(&train);
        let spec = self.model_spec();
        let malicious = self.malicious_ids();
        parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                let mut shard = train.subset(&idx);
                let is_malicious = malicious.contains(&id);
                let client: Box<dyn Client> = match (&self.attack, is_malicious) {
                    (Some(Attack::LabelFlip(a)), true) => {
                        self.augment_attacker_shard(&mut shard, a.source_class, id);
                        Box::new(label_flip_client(
                            id,
                            spec,
                            shard,
                            a,
                            self.batch_size,
                            self.seed,
                        ))
                    }
                    (Some(Attack::Backdoor(a)), true) => Box::new(backdoor_client(
                        id,
                        spec,
                        shard,
                        a,
                        self.batch_size,
                        self.seed,
                    )),
                    _ => Box::new(HonestClient::new(
                        id,
                        spec,
                        shard,
                        self.batch_size,
                        self.seed,
                    )),
                };
                client
            })
            .collect()
    }

    /// Adds `attacker_data_boost` curated samples of `class` to an
    /// attacker's shard (the attacker gathering extra data of its target
    /// class before poisoning).
    fn augment_attacker_shard(&self, shard: &mut Dataset, class: usize, id: ClientId) {
        let mut rng = rng_for(self.seed, streams::ATTACK + 500 + id as u64);
        match self.dataset {
            DatasetKind::Digits => {
                let style = DigitStyle {
                    size: self.image_size,
                    noise_sigma: 0.10,
                    max_rotation: 0.15,
                    ..Default::default()
                };
                for _ in 0..self.attacker_data_boost {
                    shard.push_image(
                        fuiov_data::synth_digits::render_digit(&mut rng, class, &style),
                        class,
                    );
                }
            }
            DatasetKind::Signs => {
                let style = SignStyle {
                    size: self.image_size,
                    ..Default::default()
                };
                for _ in 0..self.attacker_data_boost {
                    shard.push_image(
                        fuiov_data::synth_signs::render_sign(&mut rng, class, &style),
                        class,
                    );
                }
            }
            DatasetKind::Sensors => {
                let style = SensorStyle {
                    len: self.image_size,
                    ..Default::default()
                };
                for _ in 0..self.attacker_data_boost {
                    shard.push_image(
                        fuiov_data::synth_sensors::render_maneuver(&mut rng, class, &style),
                        class,
                    );
                }
            }
        }
    }

    /// The membership schedule: everyone from round 0, except the
    /// forgotten client(s) — all malicious clients under attack, the
    /// designated client otherwise — who join at `forgotten_join_round`.
    pub fn schedule(&self) -> ChurnSchedule {
        let mut schedule = ChurnSchedule::static_membership(self.n_clients, self.rounds);
        let pinned: Vec<ClientId> = if self.attack.is_some() {
            self.malicious_ids()
        } else {
            vec![self.forgotten_id()]
        };
        for id in &pinned {
            schedule.set_membership(
                *id,
                Membership {
                    joined: self.forgotten_join_round,
                    leaves_after: None,
                    dropouts: Vec::new(),
                },
            );
        }
        if self.departing_fraction > 0.0 {
            let k = ((self.n_clients as f32) * self.departing_fraction).round() as usize;
            let mut departed = 0;
            for v in 0..self.n_clients {
                if departed == k {
                    break;
                }
                if pinned.contains(&v) {
                    continue;
                }
                schedule.set_membership(
                    v,
                    Membership {
                        joined: 0,
                        leaves_after: Some(self.departure_round),
                        dropouts: Vec::new(),
                    },
                );
                departed += 1;
            }
        }
        schedule
    }

    /// Vehicles that permanently departed under this scenario's schedule.
    pub fn departed_ids(&self) -> Vec<ClientId> {
        let schedule = self.schedule();
        (0..self.n_clients)
            .filter(|&v| schedule.membership(v).leaves_after.is_some())
            .collect()
    }

    /// The `FlConfig` for this scenario.
    pub fn fl_config(&self) -> FlConfig {
        FlConfig::new(self.rounds, self.lr)
            .batch_size(self.batch_size)
            .sign_delta(self.sign_delta)
            .keep_full_gradients(self.keep_full_gradients)
    }

    /// Runs federated training and returns the complete trained state.
    pub fn train(&self) -> Trained {
        let spec = self.model_spec();
        let init_params = spec.build(self.seed).params();
        let mut clients = self.build_clients();
        let schedule = self.schedule();
        let mut server = Server::new(self.fl_config(), init_params.clone());
        if self.tree_fanout.is_some() {
            server = server.with_tree_fanout(self.tree_fanout);
        }
        if let Some(frac) = self.sample_frac {
            server = server.with_sample_frac(frac);
        }
        server.train(&mut clients, &schedule);
        let (_, test) = self.generate_pool();
        let (final_params, history, full_store) = server.into_parts();
        Trained {
            scenario: self.clone(),
            spec,
            init_params,
            final_params,
            history,
            full_store,
            clients,
            test,
            schedule,
        }
    }
}

/// Output of [`Scenario::train`]: everything experiments need.
pub struct Trained {
    /// The scenario that produced this state.
    pub scenario: Scenario,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Initial global parameters.
    pub init_params: Vec<f32>,
    /// Final global parameters `w_T`.
    pub final_params: Vec<f32>,
    /// The server's recorded history (models + directions).
    pub history: HistoryStore,
    /// Full-precision gradients (empty unless requested).
    pub full_store: FullGradientStore,
    /// The client pool (for retraining / oracles).
    pub clients: Vec<Box<dyn Client>>,
    /// Held-out test set.
    pub test: Dataset,
    /// The membership schedule used.
    pub schedule: ChurnSchedule,
}

impl std::fmt::Debug for Trained {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trained")
            .field("scenario", &self.scenario)
            .field("params", &self.final_params.len())
            .finish()
    }
}

impl Trained {
    /// Builds a model carrying the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong dimension.
    pub fn model_with(&self, params: &[f32]) -> Sequential {
        let mut m = self.spec.build(0);
        m.set_params(params);
        m
    }

    /// Test accuracy of arbitrary parameters on the held-out set.
    pub fn accuracy_of(&self, params: &[f32]) -> f32 {
        let mut m = self.model_with(params);
        fuiov_eval::test_accuracy(&mut m, &self.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_trains_deterministically() {
        let t1 = Scenario::tiny(3).train();
        let t2 = Scenario::tiny(3).train();
        assert_eq!(t1.final_params, t2.final_params);
        assert_eq!(t1.history.rounds().len(), 13);
    }

    #[test]
    fn forgotten_client_joins_at_f() {
        let t = Scenario::tiny(1).train();
        let f = t.scenario.forgotten_id();
        assert_eq!(t.history.join_round(f), Some(2));
        // Everyone else joined at round 0.
        for c in 0..t.scenario.n_clients - 1 {
            assert_eq!(t.history.join_round(c), Some(0));
        }
    }

    #[test]
    fn attack_scenario_pins_all_malicious() {
        let mut sc = Scenario::tiny(5);
        sc.attack = Some(Attack::LabelFlip(LabelFlip::paper_default()));
        sc.malicious_fraction = 0.4;
        let malicious = sc.malicious_ids();
        assert_eq!(malicious.len(), 2);
        let t = sc.train();
        for &m in &malicious {
            assert_eq!(t.history.join_round(m), Some(2));
        }
    }

    #[test]
    fn paper_scale_constructors_use_paper_shapes() {
        let d = Scenario::digits_paper(0);
        assert_eq!(d.n_clients, 100);
        assert_eq!(d.image_size, 28);
        assert_eq!(
            d.model_spec(),
            fuiov_nn::ModelSpec::CnnTwoFc {
                in_ch: 1,
                h: 28,
                w: 28,
                c1: 8,
                c2: 16,
                hidden: 64,
                classes: 10
            }
        );
        let s = Scenario::signs_paper(0);
        assert_eq!(s.image_size, 32);
        assert!(matches!(
            s.model_spec(),
            fuiov_nn::ModelSpec::CnnOneFc { h: 32, .. }
        ));
    }

    #[test]
    fn sensors_scenario_builds_and_has_mlp() {
        let sc = Scenario::sensors(1);
        assert!(matches!(
            sc.model_spec(),
            fuiov_nn::ModelSpec::Mlp { inputs: 192, .. }
        ));
        let clients = sc.build_clients();
        assert_eq!(clients.len(), 10);
    }

    #[test]
    fn departures_configure_schedule() {
        let mut sc = Scenario::tiny(2);
        sc.departing_fraction = 0.4;
        sc.departure_round = 5;
        let departed = sc.departed_ids();
        assert_eq!(departed.len(), 2);
        assert!(!departed.contains(&sc.forgotten_id()));
        let schedule = sc.schedule();
        for &v in &departed {
            assert_eq!(schedule.membership(v).leaves_after, Some(5));
        }
    }

    #[test]
    fn training_improves_accuracy() {
        let t = Scenario::tiny(7).train();
        let before = t.accuracy_of(&t.init_params);
        let after = t.accuracy_of(&t.final_params);
        assert!(after > before, "training should help: {before} -> {after}");
    }

    #[test]
    fn full_gradients_kept_when_requested() {
        let t = Scenario::tiny(2).train();
        assert!(t.full_store.bytes() > 0);
    }
}
