//! NoT: federated unlearning by weight negation (arXiv 2503.05657).
//!
//! NoT perturbs the model *away* from the forgotten knowledge without any
//! stored history at all: it negates the weights of the first layer and
//! lets subsequent federated fine-tuning on the remaining clients restore
//! utility. Negating layer 1 keeps every per-layer weight distribution
//! intact (so fine-tuning re-converges quickly) while destroying the
//! co-adaptation between layer 1 and the rest of the stack — the model
//! provably leaves the basin that memorised the forgotten data.
//!
//! As a *scenario-lab baseline* we reproduce the negation step plus an
//! optional sign-replay fine-tune from the server's own direction history
//! (the remaining clients' recorded rounds), so the comparison against
//! the paper's backtrack-and-recover pipeline is apples-to-apples: same
//! storage, no client contact. Without fine-tuning the negated model is
//! near-chance — exactly the published behaviour immediately after
//! negation.

use fuiov_core::{recover_set, NoOracle, RecoveryConfig, UnlearnError};
use fuiov_nn::ModelSpec;
use fuiov_storage::{ClientId, HistoryStore};

/// Outcome of the NoT baseline.
#[derive(Debug, Clone)]
pub struct NotOutcome {
    /// Parameters after negation (and fine-tuning, when configured).
    pub params: Vec<f32>,
    /// Name of the layer that was negated.
    pub negated_layer: &'static str,
    /// Number of parameters negated.
    pub negated_params: usize,
    /// Replay rounds spent fine-tuning (0 when fine-tuning is off).
    pub finetune_rounds: usize,
}

/// Negates the first parametric layer of `spec` inside a copy of
/// `params` — the NoT perturbation itself, no fine-tuning.
///
/// # Panics
///
/// Panics if `params` does not match the spec's parameter count.
pub fn negate_first_layer(spec: ModelSpec, params: &[f32]) -> (Vec<f32>, &'static str, usize) {
    let model = spec.build(0);
    assert_eq!(
        params.len(),
        model.param_count(),
        "negate_first_layer: parameter length mismatch"
    );
    let spans = model.layer_param_spans();
    let (name, range) = spans.first().expect("model has a parametric layer");
    let mut out = params.to_vec();
    for p in &mut out[range.clone()] {
        *p = -*p;
    }
    (out, name, range.len())
}

/// The NoT baseline against a recorded training run: negate the first
/// layer of the final model, then (when `finetune` is given) fine-tune by
/// replaying the *remaining* clients' stored sign directions from the
/// forgotten client's join round — the same data budget as the paper's
/// recovery, but starting from the negated model instead of the
/// backtracked checkpoint.
///
/// # Errors
///
/// Propagates [`UnlearnError`] from the fine-tuning replay (never errors
/// when `finetune` is `None`).
pub fn not_unlearn(
    spec: ModelSpec,
    final_params: &[f32],
    history: &HistoryStore,
    forgotten: &[ClientId],
    finetune: Option<&RecoveryConfig>,
) -> Result<NotOutcome, UnlearnError> {
    let (negated, layer, count) = negate_first_layer(spec, final_params);
    let Some(cfg) = finetune else {
        return Ok(NotOutcome {
            params: negated,
            negated_layer: layer,
            negated_params: count,
            finetune_rounds: 0,
        });
    };
    // Fine-tune: replay the remaining clients' recorded rounds, but from
    // the negated end-state rather than the backtracked checkpoint. The
    // replay engine reads start params from the history, so run it and
    // graft its *update* onto the negated model: w = neg + (replay − w_F).
    let outcome = recover_set(history, forgotten, cfg, &mut NoOracle, |_, _| {})?;
    let start = history
        .model(outcome.start_round)
        .expect("replay start model exists");
    let mut params = negated;
    for ((p, r), s) in params.iter_mut().zip(&outcome.params).zip(start.iter()) {
        *p += r - s;
    }
    Ok(NotOutcome {
        params,
        negated_layer: layer,
        negated_params: count,
        finetune_rounds: outcome.rounds_replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ModelSpec = ModelSpec::Mlp {
        inputs: 16,
        hidden: 8,
        classes: 4,
    };

    #[test]
    fn negation_flips_exactly_the_first_span() {
        let m = SPEC.build(3);
        let params = m.params();
        let (neg, layer, count) = negate_first_layer(SPEC, &params);
        assert_eq!(layer, "linear");
        let spans = m.layer_param_spans();
        let first = spans[0].1.clone();
        assert_eq!(count, first.len());
        for (i, (a, b)) in params.iter().zip(&neg).enumerate() {
            if first.contains(&i) {
                assert_eq!(*b, -*a, "index {i} must be negated");
            } else {
                assert_eq!(*b, *a, "index {i} must be untouched");
            }
        }
    }

    #[test]
    fn negation_is_an_involution() {
        let params = SPEC.build(5).params();
        let (once, _, _) = negate_first_layer(SPEC, &params);
        let (twice, _, _) = negate_first_layer(SPEC, &once);
        assert_eq!(params, twice);
    }

    #[test]
    fn no_finetune_returns_pure_negation() {
        let params = SPEC.build(7).params();
        let h = HistoryStore::new(1e-6);
        let out = not_unlearn(SPEC, &params, &h, &[0], None).expect("no replay, no error");
        assert_eq!(out.finetune_rounds, 0);
        assert_eq!(out.params, negate_first_layer(SPEC, &params).0);
    }

    #[test]
    fn finetune_replays_remaining_rounds() {
        // Two clients, three rounds; forget client 1.
        let mut h = HistoryStore::new(1e-6);
        let dim = SPEC.param_count();
        h.record_join(0, 0);
        h.record_join(1, 1);
        for round in 0..3 {
            h.record_model(round, vec![0.01 * (round as f32 + 1.0); dim]);
            // Period-3 sign pattern: rounds 1 and 2 do not cancel.
            let g: Vec<f32> = (0..dim)
                .map(|i| if (i + round) % 3 == 0 { 0.01 } else { -0.01 })
                .collect();
            h.record_gradient(round, 0, &g);
            if round >= 1 {
                h.record_gradient(round, 1, &g);
            }
        }
        h.record_model(3, vec![0.04; dim]);
        let final_params = vec![0.04f32; dim];
        let cfg = RecoveryConfig::new(0.01);
        let out = not_unlearn(SPEC, &final_params, &h, &[1], Some(&cfg)).expect("finetune");
        assert!(out.finetune_rounds > 0);
        assert!(out.params.iter().all(|p| p.is_finite()));
        // The grafted update must differ from the raw negation.
        assert_ne!(out.params, negate_first_layer(SPEC, &final_params).0);
    }
}
