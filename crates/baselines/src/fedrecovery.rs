//! FedRecovery baseline (Zhang et al., IEEE TIFS 2023), as described in
//! §II and §V-A3.
//!
//! FedRecovery is an *approximate* unlearning method: instead of
//! re-running any training, it removes a weighted sum of the forgotten
//! client's gradient residuals directly from the final global model, then
//! adds calibrated Gaussian noise so the unlearned model is statistically
//! indistinguishable from a retrained one.
//!
//! Concretely, during training the forgotten client `i` pulled the global
//! model by `−η · (‖Dᵢ‖/Σ‖D‖ₜ) · gᵗᵢ` in each round `t` it participated.
//! The unlearned model adds those contributions back:
//!
//! ```text
//! w̄ = w_T + η · Σₜ (‖Dᵢ‖ / Σⱼ∈round t ‖Dⱼ‖) · gᵗᵢ  +  𝒩(0, σ²I)
//! ```
//!
//! This needs the client's **full gradients**, so it shares FedRecover's
//! storage cost — one of the paper's criticisms.

use fuiov_core::backtrack::backtrack;
use fuiov_core::UnlearnError;
use fuiov_storage::history::FullGradientStore;
use fuiov_storage::{ClientId, HistoryStore};
use fuiov_tensor::rng::{rng_for, streams};
use fuiov_tensor::vector;
use rand::Rng;

/// FedRecovery's knobs.
#[derive(Debug, Clone, Copy)]
pub struct FedRecoveryConfig {
    /// The learning rate `η` used during original training.
    pub lr: f32,
    /// Std-dev of the Gaussian noise added for indistinguishability.
    pub noise_sigma: f32,
}

impl FedRecoveryConfig {
    /// Defaults with the given training learning rate and a small noise
    /// level.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive or `noise_sigma` negative.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "FedRecoveryConfig: invalid learning rate"
        );
        FedRecoveryConfig {
            lr,
            noise_sigma: 1e-3,
        }
    }

    /// Sets the noise standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if negative or NaN.
    pub fn noise_sigma(mut self, sigma: f32) -> Self {
        assert!(sigma >= 0.0, "FedRecoveryConfig: noise sigma must be >= 0");
        self.noise_sigma = sigma;
        self
    }
}

/// Outcome of a FedRecovery run.
#[derive(Debug, Clone)]
pub struct FedRecoveryOutcome {
    /// The unlearned (residual-removed, noised) parameters.
    pub params: Vec<f32>,
    /// Rounds in which the forgotten client's residual was removed.
    pub residuals_removed: usize,
}

/// Removes the forgotten client's gradient residuals from the final model
/// and adds Gaussian noise.
///
/// # Errors
///
/// - [`UnlearnError::EmptyHistory`] / [`UnlearnError::UnknownClient`] from
///   the participation lookup;
/// - [`UnlearnError::MissingModel`] if the final model is missing.
pub fn fedrecovery(
    history: &HistoryStore,
    full: &FullGradientStore,
    forgotten: ClientId,
    config: &FedRecoveryConfig,
    seed: u64,
) -> Result<FedRecoveryOutcome, UnlearnError> {
    // Reuse backtrack's validation to locate F and T.
    let bt = backtrack(history, forgotten)?;
    let t_end = bt.latest_round;
    let mut params = history
        .model(t_end)
        .ok_or(UnlearnError::MissingModel(t_end))?
        .to_vec();

    let mut residuals_removed = 0usize;
    for t in bt.join_round..t_end {
        let Some(g) = full.gradient(t, forgotten) else {
            continue;
        };
        // Total FedAvg weight of that round's participants.
        let total: f32 = history
            .clients_in_round(t)
            .iter()
            .map(|&c| history.weight(c))
            .sum();
        if total <= 0.0 {
            continue;
        }
        let share = history.weight(forgotten) / total;
        // Add the contribution back: w += η · share · gᵗᵢ.
        vector::axpy(config.lr * share, g, &mut params);
        residuals_removed += 1;
    }

    if config.noise_sigma > 0.0 {
        let mut rng = rng_for(seed, streams::BASELINE);
        for p in &mut params {
            let u1: f32 = rng.gen_range(1e-7..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            *p += config.noise_sigma * z;
        }
    }

    Ok(FedRecoveryOutcome {
        params,
        residuals_removed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> (HistoryStore, FullGradientStore, Vec<f32>) {
        let dim = 4;
        let lr = 0.1f32;
        let mut h = HistoryStore::new(1e-6);
        let mut fs = FullGradientStore::new();
        let mut w = vec![0.0f32; dim];
        for c in 0..3usize {
            h.record_join(c, 0);
            h.set_weight(c, 1.0);
        }
        for t in 0..5 {
            h.record_model(t, w.clone());
            let mut grads = Vec::new();
            for c in 0..3usize {
                let g: Vec<f32> = (0..dim).map(|j| (c + j) as f32 * 0.1).collect();
                h.record_gradient(t, c, &g);
                fs.record(t, c, g.clone());
                grads.push(g);
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &[1.0; 3]);
            vector::axpy(-lr, &agg, &mut w);
        }
        h.record_model(5, w.clone());
        (h, fs, w)
    }

    #[test]
    fn residual_removal_without_noise_is_exact_arithmetic() {
        let (h, fs, w_final) = synthetic();
        let cfg = FedRecoveryConfig::new(0.1).noise_sigma(0.0);
        let out = fedrecovery(&h, &fs, 2, &cfg, 0).unwrap();
        assert_eq!(out.residuals_removed, 5);
        // Expected: w_final + lr/3 · Σ_t g_t^2 (client 2's constant grad).
        let g2: Vec<f32> = (0..4).map(|j| (2 + j) as f32 * 0.1).collect();
        let mut expected = w_final;
        vector::axpy(0.1 / 3.0 * 5.0, &g2, &mut expected);
        assert!(vector::l2_distance(&out.params, &expected) < 1e-5);
    }

    #[test]
    fn noise_perturbs_but_is_deterministic_per_seed() {
        let (h, fs, _) = synthetic();
        let cfg = FedRecoveryConfig::new(0.1).noise_sigma(0.01);
        let a = fedrecovery(&h, &fs, 1, &cfg, 7).unwrap();
        let b = fedrecovery(&h, &fs, 1, &cfg, 7).unwrap();
        let c = fedrecovery(&h, &fs, 1, &cfg, 8).unwrap();
        assert_eq!(a.params, b.params);
        assert_ne!(a.params, c.params);
    }

    #[test]
    fn unknown_client_errors() {
        let (h, fs, _) = synthetic();
        let cfg = FedRecoveryConfig::new(0.1);
        assert!(matches!(
            fedrecovery(&h, &fs, 9, &cfg, 0),
            Err(UnlearnError::UnknownClient(9))
        ));
    }

    #[test]
    fn missing_gradients_are_skipped() {
        let (h, _, _) = synthetic();
        let empty = FullGradientStore::new();
        let cfg = FedRecoveryConfig::new(0.1).noise_sigma(0.0);
        let out = fedrecovery(&h, &empty, 0, &cfg, 0).unwrap();
        assert_eq!(out.residuals_removed, 0);
        assert_eq!(&out.params[..], &*h.model(5).unwrap());
    }
}
