//! Comparison baselines for the Table I evaluation (§V-A3):
//!
//! - [`mod@retrain`]: retraining from scratch on the remaining clients — the
//!   exact-unlearning gold standard;
//! - [`mod@fedrecover`]: FedRecover (Cao et al., S&P'23) — Cauchy-MVT + L-BFGS
//!   recovery from **full** stored gradients with periodic exact
//!   corrections from online clients;
//! - [`mod@federaser`]: FedEraser (Liu et al., IWQoS'21) — replay of sampled
//!   rounds with norm-preserving calibrated updates from online clients;
//! - [`mod@fedrecovery`]: FedRecovery (Zhang et al., TIFS'23) — approximate
//!   unlearning by removing the forgotten client's weighted gradient
//!   residuals from the final model plus Gaussian noise;
//! - [`mod@not`]: NoT (arXiv 2503.05657) — unlearning by negating the first
//!   layer's weights, optionally fine-tuned from the stored sign history
//!   (the scenario lab's `not` baseline variant).

pub mod federaser;
pub mod fedrecover;
pub mod fedrecovery;
pub mod not;
pub mod retrain;

pub use federaser::{federaser, FedEraserConfig, FedEraserOutcome};
pub use fedrecover::{fedrecover, FedRecoverConfig, FedRecoverOutcome};
pub use fedrecovery::{fedrecovery, FedRecoveryConfig, FedRecoveryOutcome};
pub use not::{negate_first_layer, not_unlearn, NotOutcome};
pub use retrain::retrain;
