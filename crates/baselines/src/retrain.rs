//! Retraining-from-scratch baseline (§V-A3).
//!
//! The gold standard: drop the forgotten client, re-initialise the global
//! model, and run full federated training on the remaining clients. Exact
//! unlearning, maximum cost.

use fuiov_fl::mobility::{ChurnSchedule, Membership};
use fuiov_fl::{Client, FlConfig, Server};
use fuiov_storage::ClientId;

/// Retrains from scratch without `exclude`.
///
/// `initial_params` should be a *fresh* initialisation (different seed
/// from the original run, or the same — the paper re-initialises).
/// `schedule` is the membership schedule of the retraining run; the
/// excluded client is removed from it regardless of what it says.
///
/// Returns the final global parameters.
///
/// # Panics
///
/// Panics if schedule/client counts mismatch (see
/// [`fuiov_fl::Server::train`]).
pub fn retrain(
    initial_params: Vec<f32>,
    cfg: FlConfig,
    clients: &mut [Box<dyn Client>],
    schedule: &ChurnSchedule,
    exclude: ClientId,
) -> Vec<f32> {
    let rounds = schedule.rounds();
    let mut schedule = schedule.clone();
    for (v, client) in clients.iter().enumerate() {
        if client.id() == exclude {
            // Joining "at the end" means the vehicle never participates.
            schedule.set_membership(
                v,
                Membership {
                    joined: rounds,
                    leaves_after: None,
                    dropouts: Vec::new(),
                },
            );
        }
    }
    let mut server = Server::new(cfg, initial_params);
    server.train(clients, &schedule);
    let (params, _, _) = server.into_parts();
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::{Dataset, DigitStyle};
    use fuiov_fl::HonestClient;
    use fuiov_nn::ModelSpec;

    #[test]
    fn retrain_never_involves_excluded_client() {
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        let data = Dataset::digits(60, &DigitStyle::small(), 2);
        let parts = fuiov_data::partition::partition_iid(data.len(), 3, 2);
        let mut clients: Vec<Box<dyn Client>> = parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, spec, data.subset(&idx), 10, 2)) as Box<dyn Client>
            })
            .collect();
        let cfg = FlConfig::new(3, 0.2).batch_size(10).parallel_clients(false);
        let schedule = ChurnSchedule::static_membership(3, 3);

        // Retrain without client 1 and verify via a fresh server's history.
        let mut server = Server::new(cfg.clone(), spec.build(9).params());
        let mut sched2 = schedule.clone();
        sched2.set_membership(
            1,
            Membership {
                joined: 3,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        server.train(&mut clients, &sched2);
        assert!(server.history().join_round(1).is_none());

        // And the public function produces the same parameters.
        let mut clients2: Vec<Box<dyn Client>> = {
            let parts = fuiov_data::partition::partition_iid(data.len(), 3, 2);
            parts
                .into_iter()
                .enumerate()
                .map(|(id, idx)| {
                    Box::new(HonestClient::new(id, spec, data.subset(&idx), 10, 2))
                        as Box<dyn Client>
                })
                .collect()
        };
        let params = retrain(spec.build(9).params(), cfg, &mut clients2, &schedule, 1);
        assert_eq!(params, server.params());
    }
}
