//! FedRecover baseline (Cao et al., IEEE S&P 2023), as described in
//! §V-A3.
//!
//! Like the paper's scheme, FedRecover recovers via Cauchy-MVT estimation
//! with L-BFGS Hessian approximations — but it differs in exactly the two
//! ways the paper criticises:
//!
//! 1. the server stores (and estimates from) **complete `f32` gradients**
//!    rather than directions, costing 16× the storage, and
//! 2. it periodically asks **online clients** for exact gradients at the
//!    recovered model (the paper's setup queries every 20 rounds) to
//!    correct estimation drift — so it fails when clients leave FL.
//!
//! This implementation reinitialises to the join-round model (matching the
//! backtracking comparison point so the two schemes recover the same span
//! of rounds).

use fuiov_core::backtrack::backtrack;
use fuiov_core::batch::{RoundScratch, StackedLbfgs};
use fuiov_core::lbfgs::{LbfgsApprox, PairBuffer};
use fuiov_core::recover::GradientOracle;
use fuiov_core::UnlearnError;
use fuiov_fl::aggregate::aggregate_refs;
use fuiov_fl::config::AggregationRule;
use fuiov_storage::history::FullGradientStore;
use fuiov_storage::{ClientId, HistoryStore};
use fuiov_tensor::{pool, vector};
use std::collections::BTreeMap;

/// FedRecover's knobs.
#[derive(Debug, Clone, Copy)]
pub struct FedRecoverConfig {
    /// Server learning rate `η`.
    pub lr: f32,
    /// L-BFGS buffer size.
    pub buffer_size: usize,
    /// Every this many replayed rounds the server requests exact
    /// gradients from online clients (paper setup: 20).
    pub correction_interval: usize,
    /// Safety clip: an estimated gradient's L2 norm is bounded by this
    /// factor times the historical gradient's norm, preventing L-BFGS
    /// blow-ups between corrections (FedRecover's paper applies a similar
    /// estimate-magnitude guard).
    pub estimate_clip_factor: Option<f32>,
}

impl FedRecoverConfig {
    /// Paper-setup defaults with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "FedRecoverConfig: invalid learning rate"
        );
        FedRecoverConfig {
            lr,
            buffer_size: 2,
            correction_interval: 20,
            estimate_clip_factor: Some(3.0),
        }
    }
}

/// Outcome of a FedRecover run.
#[derive(Debug, Clone)]
pub struct FedRecoverOutcome {
    /// Recovered global parameters.
    pub params: Vec<f32>,
    /// Exact-gradient queries made to online clients.
    pub exact_queries: usize,
    /// Client-rounds where no L-BFGS approximation was available.
    pub estimator_fallbacks: usize,
    /// Rounds replayed.
    pub rounds_replayed: usize,
}

/// Runs FedRecover: replay rounds `F..T` estimating remaining clients'
/// gradients from **full stored gradients**, with periodic exact
/// correction through `oracle`.
///
/// # Errors
///
/// Same conditions as [`fuiov_core::recover()`]; additionally the full
/// gradient store must contain every gradient the history's participation
/// record promises (a missing entry is treated as non-participation).
pub fn fedrecover(
    history: &HistoryStore,
    full: &FullGradientStore,
    forgotten: ClientId,
    config: &FedRecoverConfig,
    oracle: &mut dyn GradientOracle,
) -> Result<FedRecoverOutcome, UnlearnError> {
    let bt = backtrack(history, forgotten)?;
    let f_round = bt.join_round;
    let t_end = bt.latest_round;
    if f_round >= t_end {
        return Err(UnlearnError::NothingToRecover {
            join_round: f_round,
            latest_round: t_end,
        });
    }

    let mut params = bt.params;
    let remaining: Vec<ClientId> = history
        .clients()
        .into_iter()
        .filter(|&c| c != forgotten)
        .collect();

    // Seed buffers from pre-F rounds with full gradients.
    let mut buffers: BTreeMap<ClientId, PairBuffer> = BTreeMap::new();
    let mut approxes: BTreeMap<ClientId, LbfgsApprox> = BTreeMap::new();
    let seed_start = f_round.saturating_sub(config.buffer_size);
    let w_f = history
        .model(f_round)
        .ok_or(UnlearnError::MissingModel(f_round))?;
    for &client in &remaining {
        let mut buf = PairBuffer::new(config.buffer_size);
        if let Some(g_f) = full.gradient(f_round, client) {
            for r in seed_start..f_round {
                let (Some(w_r), Some(g_r)) = (history.model(r), full.gradient(r, client)) else {
                    continue;
                };
                buf.push(vector::sub(&w_r, &w_f), vector::sub(g_r, g_f));
            }
        }
        if let Ok(a) = buf.approximation() {
            approxes.insert(client, a);
        }
        buffers.insert(client, buf);
    }

    let mut exact_queries = 0usize;
    let mut estimator_fallbacks = 0usize;

    // Estimation rounds run on the batched engine: one stacked inbound
    // sweep serves every client's Eq. 6 estimate (see fuiov_core::batch).
    let dim = params.len();
    let mut stacked = StackedLbfgs::build(dim, std::iter::empty());
    let mut stacked_dirty = true;
    let mut scratch = RoundScratch::new();
    let mut roster: Vec<(ClientId, Option<usize>)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();

    for t in f_round..t_end {
        // Stream the historical model through the round's snapshot view
        // (spilled rounds decode once into the LRU) and warm the cache for
        // the next round before the heavy estimation work.
        let view = history.round_view(t);
        if t + 1 < t_end {
            history.prefetch(t + 1);
        }
        let w_t = view.model().ok_or(UnlearnError::MissingModel(t))?;
        vector::sub_into_aligned(&params, w_t, &mut scratch.dw_t);
        let dw_t = &scratch.dw_t;
        let replayed = t - f_round + 1;
        let correction_round = replayed % config.correction_interval == 0;
        fuiov_obs::counter!("fedrecover.replay_rounds").inc();
        if correction_round {
            fuiov_obs::counter!("fedrecover.correction_rounds").inc();
        }

        weights.clear();

        if correction_round {
            // Correction rounds stay serial: the oracle is `&mut` and the
            // vector-pair refresh mutates shared state per client.
            let mut grads: Vec<Vec<f32>> = Vec::new();
            for &client in &remaining {
                let Some(g_hist) = full.gradient(t, client) else {
                    continue;
                };
                let mut est = if let Some(exact) = oracle.gradient_at(client, &params) {
                    exact_queries += 1;
                    fuiov_obs::counter!("fedrecover.exact_queries").inc();
                    // Use the exact gradient and refresh this client's
                    // vector pairs with ground truth.
                    if vector::l2_norm(dw_t) > 1e-12 {
                        vector::sub_into(&exact, g_hist, &mut scratch.dg);
                        let buf = buffers
                            .entry(client)
                            .or_insert_with(|| PairBuffer::new(config.buffer_size));
                        buf.push_from_slices(dw_t, &scratch.dg);
                        if let Ok(a) = buf.approximation() {
                            approxes.insert(client, a);
                            stacked_dirty = true;
                        }
                    }
                    exact
                } else {
                    let (est, fallback) = estimate(g_hist, dw_t, approxes.get(&client));
                    estimator_fallbacks += usize::from(fallback);
                    fuiov_obs::counter!("fedrecover.estimator_fallbacks").add(fallback as u64);
                    est
                };
                clip_estimate(&mut est, g_hist, config);
                weights.push(history.weight(client));
                grads.push(est);
            }
            if !grads.is_empty() {
                let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
                let agg = aggregate_refs(AggregationRule::FedAvg, &refs, &weights);
                vector::axpy(-config.lr, &agg, &mut params);
            }
        } else {
            // Pure estimation rounds read shared state only: one fused
            // inbound sweep + per-client middle solves, then each client's
            // row of the flat estimate matrix is filled independently.
            // Rows are computed element-for-element like the per-client
            // path and consumed in fixed `remaining` order, keeping the
            // recovered model bitwise identical at any pool width.
            if stacked_dirty {
                stacked = StackedLbfgs::build(dim, approxes.iter().map(|(c, a)| (*c, a)));
                stacked_dirty = false;
            }
            roster.clear();
            for &client in &remaining {
                if full.gradient(t, client).is_none() {
                    continue;
                }
                let entry = stacked.entry_for(client);
                estimator_fallbacks += usize::from(entry.is_none());
                fuiov_obs::counter!("fedrecover.estimator_fallbacks").add(entry.is_none() as u64);
                roster.push((client, entry));
                weights.push(history.weight(client));
            }
            let n_part = roster.len();
            if n_part > 0 {
                if !stacked.is_empty() {
                    stacked.fused_dots(dw_t, &mut scratch.dots);
                    stacked.solve_middles(
                        &scratch.dots,
                        &mut scratch.ps,
                        &mut scratch.rhs,
                        &mut scratch.p,
                    );
                }
                scratch.est.resize(n_part * dim, 0.0);
                let est_buf = &mut scratch.est[..n_part * dim];
                let (stacked_ref, ps, roster_ref) = (&stacked, &scratch.ps, &roster);
                pool::par_row_bands_weighted(est_buf, n_part, dim, dim, |rows, band| {
                    for (row, p) in band.chunks_mut(dim).zip(rows) {
                        let (client, entry) = roster_ref[p];
                        let g_hist = full.gradient(t, client).expect("roster checked");
                        row.copy_from_slice(g_hist);
                        if let Some(e) = entry {
                            stacked_ref.accumulate_correction(e, ps, dw_t, row);
                        }
                        clip_estimate(row, g_hist, config);
                    }
                });
                let refs: Vec<&[f32]> = est_buf.chunks(dim).collect();
                let agg = aggregate_refs(AggregationRule::FedAvg, &refs, &weights);
                vector::axpy(-config.lr, &agg, &mut params);
            }
        }
    }

    Ok(FedRecoverOutcome {
        params,
        exact_queries,
        estimator_fallbacks,
        rounds_replayed: t_end - f_round,
    })
}

/// Cauchy-MVT estimate `g + H̃·dw`; the flag reports an estimator
/// fallback (no approximation available, raw history used).
fn estimate(g_hist: &[f32], dw: &[f32], approx: Option<&LbfgsApprox>) -> (Vec<f32>, bool) {
    let mut est = g_hist.to_vec();
    match approx {
        Some(a) => {
            vector::axpy(1.0, &a.hvp(dw), &mut est);
            (est, false)
        }
        None => (est, true),
    }
}

/// FedRecover's estimate-magnitude guard (L2 clip at a multiple of the
/// historical gradient norm).
fn clip_estimate(est: &mut [f32], g_hist: &[f32], config: &FedRecoverConfig) {
    if let Some(factor) = config.estimate_clip_factor {
        let bound = factor * vector::l2_norm(g_hist);
        if bound > 0.0 {
            vector::clip_l2(est, bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_core::recover::NoOracle;

    /// History + full store from a synthetic quadratic optimisation.
    fn synthetic(
        rounds: usize,
        clients: usize,
        forgotten: ClientId,
    ) -> (HistoryStore, FullGradientStore) {
        let dim = 5;
        let lr = 0.05f32;
        let mut h = HistoryStore::new(1e-6);
        let mut fs = FullGradientStore::new();
        let mut w = vec![0.0f32; dim];
        for c in 0..clients {
            h.record_join(c, if c == forgotten { 2 } else { 0 });
            h.set_weight(c, 1.0);
        }
        for t in 0..rounds {
            h.record_model(t, w.clone());
            let mut grads = Vec::new();
            for c in 0..clients {
                if c == forgotten && t < 2 {
                    continue;
                }
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
                let g = vector::sub(&w, &target);
                h.record_gradient(t, c, &g);
                fs.record(t, c, g.clone());
                grads.push(g);
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &vec![1.0; refs.len()]);
            vector::axpy(-lr, &agg, &mut w);
        }
        h.record_model(rounds, w);
        (h, fs)
    }

    #[test]
    fn recovers_close_to_true_remaining_trajectory() {
        let (h, fs) = synthetic(40, 4, 1);
        let cfg = FedRecoverConfig::new(0.05);
        let out = fedrecover(&h, &fs, 1, &cfg, &mut NoOracle).unwrap();
        assert_eq!(out.rounds_replayed, 38);
        assert!(out.params.iter().all(|v| v.is_finite()));

        // Ground truth: replay the quadratic without client 1 exactly.
        let dim = 5;
        let mut w = h.model(2).unwrap().to_vec();
        for _ in 2..40 {
            let mut grads = Vec::new();
            for c in [0usize, 2, 3] {
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
                grads.push(vector::sub(&w, &target));
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &[1.0; 3]);
            vector::axpy(-0.05, &agg, &mut w);
        }
        let err = vector::l2_distance(&out.params, &w);
        assert!(err < 0.5, "FedRecover drifted too far from truth: {err}");
    }

    struct ExactOracle;

    impl GradientOracle for ExactOracle {
        fn gradient_at(&mut self, client: ClientId, params: &[f32]) -> Option<Vec<f32>> {
            let dim = params.len();
            let target: Vec<f32> = (0..dim).map(|j| ((client + j) % 3) as f32).collect();
            Some(vector::sub(params, &target))
        }
    }

    #[test]
    fn exact_corrections_tighten_recovery() {
        let (h, fs) = synthetic(50, 4, 1);
        let mut cfg = FedRecoverConfig::new(0.05);
        cfg.correction_interval = 5;
        let corrected = fedrecover(&h, &fs, 1, &cfg, &mut ExactOracle).unwrap();
        let uncorrected = fedrecover(&h, &fs, 1, &cfg, &mut NoOracle).unwrap();
        assert!(corrected.exact_queries > 0);
        assert_eq!(uncorrected.exact_queries, 0);

        // Ground truth final model.
        let dim = 5;
        let mut w = h.model(2).unwrap().to_vec();
        for _ in 2..50 {
            let mut grads = Vec::new();
            for c in [0usize, 2, 3] {
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
                grads.push(vector::sub(&w, &target));
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &[1.0; 3]);
            vector::axpy(-0.05, &agg, &mut w);
        }
        let err_corrected = vector::l2_distance(&corrected.params, &w);
        let err_uncorrected = vector::l2_distance(&uncorrected.params, &w);
        assert!(
            err_corrected <= err_uncorrected + 1e-6,
            "corrections should not hurt: {err_corrected} vs {err_uncorrected}"
        );
    }

    #[test]
    fn parallel_and_serial_fedrecover_give_identical_models() {
        // Estimation rounds fan out over the pool; fixed-order aggregation
        // keeps the result bitwise identical to the serial loop.
        let (h, fs) = synthetic(40, 5, 1);
        let mut cfg = FedRecoverConfig::new(0.05);
        cfg.correction_interval = 7;
        let run = |threads: usize| {
            fuiov_tensor::pool::set_threads(threads);
            let out = fedrecover(&h, &fs, 1, &cfg, &mut ExactOracle).unwrap();
            fuiov_tensor::pool::set_threads(0);
            (
                out.params.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                out.exact_queries,
                out.estimator_fallbacks,
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "4-thread FedRecover diverged from serial");
    }

    #[test]
    fn unknown_client_errors() {
        let (h, fs) = synthetic(10, 3, 1);
        let cfg = FedRecoverConfig::new(0.05);
        assert!(matches!(
            fedrecover(&h, &fs, 77, &cfg, &mut NoOracle),
            Err(UnlearnError::UnknownClient(77))
        ));
    }
}
