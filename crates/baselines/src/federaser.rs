//! FedEraser baseline (Liu et al., IWQoS 2021) — the other
//! retraining-based unlearning scheme the paper positions against (§I).
//!
//! FedEraser periodically stores client updates during training (every
//! `calibration_interval` rounds) and unlearns by replaying only those
//! sampled rounds: at each, the *remaining* online clients compute fresh
//! "calibration" gradients at the current recovered model, and each
//! stored update is replaced by the calibrated **direction** scaled to
//! the stored update's **norm**:
//!
//! ```text
//! ûᵗᵢ = ‖uᵗᵢ_stored‖ · ĝᵗᵢ / ‖ĝᵗᵢ‖
//! ```
//!
//! Like FedRecover it needs full stored gradients *and* online clients —
//! both of the paper's criticisms apply; it is implemented here for
//! completeness of the related-work comparison and for the churn
//! experiments (clients that left make calibration impossible; the
//! fallback replays the stored update unchanged).

use fuiov_core::backtrack::backtrack;
use fuiov_core::recover::GradientOracle;
use fuiov_core::UnlearnError;
use fuiov_fl::aggregate::aggregate;
use fuiov_fl::config::AggregationRule;
use fuiov_storage::history::FullGradientStore;
use fuiov_storage::{ClientId, HistoryStore};
use fuiov_tensor::vector;

/// FedEraser's knobs.
#[derive(Debug, Clone, Copy)]
pub struct FedEraserConfig {
    /// The training learning rate `η`.
    pub lr: f32,
    /// Replay every this many rounds (FedEraser's storage/calibration
    /// interval Δt; the original paper uses 2–10).
    pub calibration_interval: usize,
}

impl FedEraserConfig {
    /// Defaults with the given learning rate and Δt = 5.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "FedEraserConfig: invalid learning rate"
        );
        FedEraserConfig {
            lr,
            calibration_interval: 5,
        }
    }

    /// Sets the calibration interval Δt.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn calibration_interval(mut self, dt: usize) -> Self {
        assert!(dt > 0, "FedEraserConfig: interval must be positive");
        self.calibration_interval = dt;
        self
    }
}

/// Outcome of a FedEraser run.
#[derive(Debug, Clone)]
pub struct FedEraserOutcome {
    /// The unlearned-and-calibrated parameters.
    pub params: Vec<f32>,
    /// Sampled rounds replayed.
    pub rounds_sampled: usize,
    /// Calibration gradients obtained from online clients.
    pub calibrations: usize,
    /// Stored updates replayed unchanged because the client was offline.
    pub fallbacks: usize,
}

/// Runs FedEraser: backtrack to `w_F`, then replay every Δt-th round with
/// norm-preserving calibrated updates from `oracle`.
///
/// # Errors
///
/// Same conditions as [`fuiov_core::backtrack()`], plus
/// [`UnlearnError::NothingToRecover`] when no rounds follow `F`.
pub fn federaser(
    history: &HistoryStore,
    full: &FullGradientStore,
    forgotten: ClientId,
    config: &FedEraserConfig,
    oracle: &mut dyn GradientOracle,
) -> Result<FedEraserOutcome, UnlearnError> {
    let bt = backtrack(history, forgotten)?;
    let f_round = bt.join_round;
    let t_end = bt.latest_round;
    if f_round >= t_end {
        return Err(UnlearnError::NothingToRecover {
            join_round: f_round,
            latest_round: t_end,
        });
    }

    let remaining: Vec<ClientId> = history
        .clients()
        .into_iter()
        .filter(|&c| c != forgotten)
        .collect();

    let mut params = bt.params;
    let mut rounds_sampled = 0usize;
    let mut calibrations = 0usize;
    let mut fallbacks = 0usize;

    let mut t = f_round;
    while t < t_end {
        let mut updates: Vec<Vec<f32>> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        for &client in &remaining {
            let Some(stored) = full.gradient(t, client) else {
                continue;
            };
            let stored_norm = vector::l2_norm(stored);
            let update = match oracle.gradient_at(client, &params) {
                Some(calibrated) if vector::l2_norm(&calibrated) > 0.0 => {
                    calibrations += 1;
                    // Calibrated direction at the stored magnitude.
                    let mut u = calibrated;
                    let n = vector::l2_norm(&u);
                    vector::scale(stored_norm / n, &mut u);
                    u
                }
                _ => {
                    fallbacks += 1;
                    stored.to_vec()
                }
            };
            weights.push(history.weight(client));
            updates.push(update);
        }
        if !updates.is_empty() {
            let agg = aggregate(AggregationRule::FedAvg, &updates, &weights);
            // One calibrated step stands in for Δt original rounds.
            let step = config.lr * config.calibration_interval as f32;
            vector::axpy(-step, &agg, &mut params);
        }
        rounds_sampled += 1;
        t += config.calibration_interval;
    }

    Ok(FedEraserOutcome {
        params,
        rounds_sampled,
        calibrations,
        fallbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_core::recover::NoOracle;

    /// Quadratic synthetic world shared with the FedRecover tests.
    fn synthetic(
        rounds: usize,
        clients: usize,
        forgotten: ClientId,
    ) -> (HistoryStore, FullGradientStore) {
        let dim = 5;
        let lr = 0.05f32;
        let mut h = HistoryStore::new(1e-6);
        let mut fs = FullGradientStore::new();
        let mut w = vec![0.0f32; dim];
        for c in 0..clients {
            h.record_join(c, if c == forgotten { 2 } else { 0 });
            h.set_weight(c, 1.0);
        }
        for t in 0..rounds {
            h.record_model(t, w.clone());
            let mut grads = Vec::new();
            for c in 0..clients {
                if c == forgotten && t < 2 {
                    continue;
                }
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
                let g = vector::sub(&w, &target);
                h.record_gradient(t, c, &g);
                fs.record(t, c, g.clone());
                grads.push(g);
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &vec![1.0f32; refs.len()]);
            vector::axpy(-lr, &agg, &mut w);
        }
        h.record_model(rounds, w);
        (h, fs)
    }

    struct ExactOracle;

    impl GradientOracle for ExactOracle {
        fn gradient_at(&mut self, client: ClientId, params: &[f32]) -> Option<Vec<f32>> {
            let dim = params.len();
            let target: Vec<f32> = (0..dim).map(|j| ((client + j) % 3) as f32).collect();
            Some(vector::sub(params, &target))
        }
    }

    /// Ground-truth remaining-clients trajectory.
    fn truth(h: &HistoryStore, rounds: usize) -> Vec<f32> {
        let dim = 5;
        let mut w = h.model(2).unwrap().to_vec();
        for _ in 2..rounds {
            let mut grads = Vec::new();
            for c in [0usize, 2, 3] {
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
                grads.push(vector::sub(&w, &target));
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let agg = vector::weighted_mean(&refs, &[1.0; 3]);
            vector::axpy(-0.05, &agg, &mut w);
        }
        w
    }

    #[test]
    fn calibrated_replay_tracks_truth() {
        let (h, fs) = synthetic(42, 4, 1);
        let cfg = FedEraserConfig::new(0.05).calibration_interval(4);
        let out = federaser(&h, &fs, 1, &cfg, &mut ExactOracle).unwrap();
        assert_eq!(out.rounds_sampled, 10);
        assert!(out.calibrations > 0);
        assert_eq!(out.fallbacks, 0);
        let w_true = truth(&h, 42);
        let err = vector::l2_distance(&out.params, &w_true);
        assert!(err < 1.0, "FedEraser drifted too far: {err}");
    }

    #[test]
    fn offline_clients_fall_back_to_stored_updates() {
        let (h, fs) = synthetic(20, 4, 1);
        let cfg = FedEraserConfig::new(0.05).calibration_interval(5);
        let out = federaser(&h, &fs, 1, &cfg, &mut NoOracle).unwrap();
        assert_eq!(out.calibrations, 0);
        assert!(out.fallbacks > 0);
        assert!(out.params.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn calibration_beats_fallback_on_accuracy_to_truth() {
        let (h, fs) = synthetic(40, 4, 1);
        let cfg = FedEraserConfig::new(0.05).calibration_interval(4);
        let calibrated = federaser(&h, &fs, 1, &cfg, &mut ExactOracle).unwrap();
        let fallback = federaser(&h, &fs, 1, &cfg, &mut NoOracle).unwrap();
        let w_true = truth(&h, 40);
        let e_cal = vector::l2_distance(&calibrated.params, &w_true);
        let e_fb = vector::l2_distance(&fallback.params, &w_true);
        assert!(
            e_cal <= e_fb + 1e-4,
            "calibration should help: {e_cal} vs {e_fb}"
        );
    }

    #[test]
    fn unknown_client_errors() {
        let (h, fs) = synthetic(10, 3, 1);
        let cfg = FedEraserConfig::new(0.05);
        assert!(matches!(
            federaser(&h, &fs, 42, &cfg, &mut NoOracle),
            Err(UnlearnError::UnknownClient(42))
        ));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn rejects_zero_interval() {
        let _ = FedEraserConfig::new(0.1).calibration_interval(0);
    }
}
