//! The networked-vs-in-process bitwise oracle.
//!
//! The wire layer may race — threads, sockets, scheduler — but round
//! outcomes must be **golden-trace-identical** to the in-process loop
//! given the same participation set. Three oracles pin it:
//!
//! 1. clean loopback (full participation) == `Server::run_round`, bitwise;
//! 2. 2-bit sign uploads == locally quantised in-process uploads, bitwise;
//! 3. under the testkit fault plans at seeds 101/202 (torn frames,
//!    connection drops, duplicate transmissions, dropouts), the observed
//!    per-round participation replayed in-process reproduces every round
//!    model bit for bit.

use fuiov_data::{Dataset, DigitStyle};
use fuiov_fl::{Client, FlConfig, HonestClient, Server, Upload};
use fuiov_net::wire::{
    encode_control, encode_grad_upload_into, encode_register, read_frame, ControlCode,
};
use fuiov_net::{NetAddr, NetConfig, NetServer, NetVehicle, UploadMode, VehicleConfig};
use fuiov_nn::ModelSpec;
use fuiov_storage::segment::{check_record, RecordKind};
use fuiov_storage::{GradientDirection, Round};
use fuiov_testkit::{Fault, FaultPlan, FaultSpec};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::Shutdown;
use std::time::Duration;

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 4,
    classes: 10,
};

fn make_client(id: usize) -> HonestClient {
    let data = Dataset::digits(20, &DigitStyle::small(), id as u64 + 1);
    HonestClient::new(id, SPEC, data, 10, 1)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn dim() -> usize {
    SPEC.build(0).params().len()
}

/// Runs `n` vehicles over loopback for `rounds`, returning the mutated
/// server.
fn run_networked(n: usize, rounds: usize, mode: UploadMode, delta: f32) -> Server {
    let cfg = NetConfig::new(NetAddr::parse("tcp:127.0.0.1:0"), n)
        .with_mode(mode)
        .with_deadline(Duration::from_secs(10));
    let mut net = NetServer::bind(cfg).expect("bind");
    let addr = net.local_addr().clone();
    let vehicles: Vec<_> = (0..n)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut vcfg = VehicleConfig::new(addr, 7);
                if mode == UploadMode::Sign2Bit {
                    vcfg = vcfg.with_sign_uploads(delta);
                }
                NetVehicle::new(vcfg, Box::new(make_client(id)), dim())
                    .run()
                    .expect("vehicle run")
            })
        })
        .collect();
    let mut fl = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(0).params());
    let report = net.serve(&mut fl, rounds).expect("serve");
    for v in vehicles {
        v.join().expect("vehicle thread");
    }
    // Clean run: exact reconciliation with comms::round_bytes.
    let (down, up_full, up_sign) = fuiov_fl::comms::round_bytes(dim(), n);
    assert_eq!(report.tx_payload, (rounds * down) as u64);
    let expected_up = match mode {
        UploadMode::FullF32 => up_full,
        UploadMode::Sign2Bit => up_sign,
    };
    assert_eq!(report.rx_payload, (rounds * expected_up) as u64);
    assert_eq!(
        report.duplicates + report.stale + report.torn + report.timeouts,
        0
    );
    fl
}

#[test]
fn clean_loopback_matches_in_process_bitwise() {
    let (n, rounds) = (4, 3);
    let net_fl = run_networked(n, rounds, UploadMode::FullF32, 0.0);

    let mut clients: Vec<Box<dyn Client>> = (0..n)
        .map(|id| Box::new(make_client(id)) as Box<dyn Client>)
        .collect();
    let active: Vec<usize> = (0..n).collect();
    let mut fl = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(0).params());
    for _ in 0..rounds {
        fl.run_round(&mut clients, &active);
    }

    assert_eq!(bits(net_fl.params()), bits(fl.params()));
    // `record_model(t, ..)` stores the round-*start* model, so history
    // holds rounds 0..rounds; the post-training model is `params()`.
    for t in 0..rounds {
        assert_eq!(
            bits(&net_fl.history().model(t).expect("net model")),
            bits(&fl.history().model(t).expect("local model")),
            "round {t} model diverged"
        );
    }
    for (a, b) in net_fl.summaries().iter().zip(fl.summaries()) {
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.update_norm.to_bits(), b.update_norm.to_bits());
    }
}

#[test]
fn sign_mode_loopback_matches_quantized_in_process_bitwise() {
    let (n, rounds, delta) = (3, 3, 1e-3f32);
    let net_fl = run_networked(n, rounds, UploadMode::Sign2Bit, delta);

    // In-process arm: the same quantise→decode the vehicles apply.
    let mut clients: Vec<HonestClient> = (0..n).map(make_client).collect();
    let mut fl = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(0).params());
    for t in 0..rounds {
        let params = fl.params().to_vec();
        let uploads = clients
            .iter_mut()
            .map(|c| Upload {
                client: c.id(),
                weight: c.weight(),
                grad: GradientDirection::quantize(&c.gradient(&params, t), delta).to_f32(),
            })
            .collect();
        fl.run_round_uploads(uploads);
    }

    assert_eq!(bits(net_fl.params()), bits(fl.params()));
}

/// Per-(round) scripted wire behaviour for one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Voluntary dropout: explicit Skip frame.
    Dropout,
    /// Cut the upload frame after `1 + cut % (len-1)` bytes, then drop
    /// the connection and come back.
    Torn(usize),
    /// Drop the connection before uploading, then come back.
    Drop,
    /// Transmit the upload twice back to back.
    Duplicate,
}

/// A protocol-speaking vehicle with fault hooks — the raw-socket twin of
/// `NetVehicle`, scripted by the fault plan.
fn run_scripted(mut inner: HonestClient, addr: NetAddr, actions: BTreeMap<Round, Action>) {
    let id = inner.id();
    let d = dim();
    let weight = Client::weight(&inner);
    let connect = |attempts: u32| -> Option<fuiov_net::Conn> {
        let hello = encode_register(id, weight, d);
        for _ in 0..attempts {
            if let Ok(mut c) = fuiov_net::Conn::connect(&addr) {
                if c.write_all(&hello).is_ok() {
                    return Some(c);
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        None
    };
    let mut conn = match connect(50) {
        Some(c) => c,
        None => return,
    };
    let mut frame = Vec::new();
    let mut upload = Vec::new();
    let mut scratch = Vec::new();
    loop {
        match read_frame(&mut conn, &mut frame) {
            Ok(true) => {}
            // Clean close or error: the server may be done, or this is
            // the aftermath of our own injected drop — try to come back,
            // give up quietly if the listener is gone.
            Ok(false) | Err(_) => match connect(5) {
                Some(c) => {
                    conn = c;
                    continue;
                }
                None => return,
            },
        }
        let Ok((kind, round, _base, payload)) = check_record(&frame) else {
            return;
        };
        match kind {
            RecordKind::RoundModel => {
                let params: Vec<f32> = payload
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                match actions.get(&round).copied() {
                    Some(Action::Dropout) => {
                        let skip = encode_control(ControlCode::Skip, round as u64);
                        if conn.write_all(&skip).is_err() {
                            return;
                        }
                    }
                    Some(Action::Drop) => {
                        conn.shutdown(Shutdown::Both);
                        match connect(5) {
                            Some(c) => conn = c,
                            None => return,
                        }
                    }
                    Some(Action::Torn(cut)) => {
                        let grad = inner.gradient(&params, round);
                        encode_grad_upload_into(&mut upload, &mut scratch, round, id, &grad);
                        let cut = 1 + cut % (upload.len() - 1);
                        let _ = conn.write_all(&upload[..cut]);
                        conn.shutdown(Shutdown::Both);
                        match connect(5) {
                            Some(c) => conn = c,
                            None => return,
                        }
                    }
                    other => {
                        let grad = inner.gradient(&params, round);
                        encode_grad_upload_into(&mut upload, &mut scratch, round, id, &grad);
                        if conn.write_all(&upload).is_err() {
                            return;
                        }
                        if other == Some(Action::Duplicate) && conn.write_all(&upload).is_err() {
                            return;
                        }
                    }
                }
            }
            RecordKind::Control => match round as u64 {
                0 => return, // Done
                _ => continue,
            },
            _ => return,
        }
    }
}

#[test]
fn fault_seeds_replay_in_process_bitwise() {
    let (n, rounds) = (4, 6);
    for seed in [101u64, 202] {
        let plan = FaultPlan::sample(seed, &FaultSpec::small(n, rounds, dim()));

        // Script every vehicle from the plan: client-side dropouts plus
        // the wire fault family. A dropout on the same cell as a wire
        // fault wins — no upload exists to tear or duplicate.
        let mut actions: Vec<BTreeMap<Round, Action>> = vec![BTreeMap::new(); n];
        for f in plan.net_faults() {
            match *f {
                Fault::TornFrame { client, round, cut } => {
                    actions[client].insert(round, Action::Torn(cut));
                }
                Fault::ConnectionDrop { client, round } => {
                    actions[client].insert(round, Action::Drop);
                }
                Fault::DuplicateUpload { client, round } => {
                    actions[client].insert(round, Action::Duplicate);
                }
                _ => unreachable!("net_faults returns only wire faults"),
            }
        }
        for (client, acts) in actions.iter_mut().enumerate() {
            for round in 0..rounds {
                if plan.is_dropout(client, round) {
                    acts.insert(round, Action::Dropout);
                }
            }
        }

        let cfg = NetConfig::new(NetAddr::parse("tcp:127.0.0.1:0"), n)
            .with_deadline(Duration::from_millis(800));
        let mut net = NetServer::bind(cfg).expect("bind");
        let addr = net.local_addr().clone();
        let vehicles: Vec<_> = (0..n)
            .map(|id| {
                let addr = addr.clone();
                let acts = actions[id].clone();
                std::thread::spawn(move || run_scripted(make_client(id), addr, acts))
            })
            .collect();
        let mut fl = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(0).params());
        let report = net.serve(&mut fl, rounds).expect("serve");
        for v in vehicles {
            v.join().expect("vehicle thread");
        }

        // The wire was genuinely noisy…
        let thinned = fl.summaries().iter().any(|s| s.participants.len() < n);
        assert!(
            thinned,
            "seed {seed}: fault plan produced no missing upload"
        );

        // …but replaying the observed participation set in process
        // reproduces every round bit for bit.
        let mut clients: Vec<HonestClient> = (0..n).map(make_client).collect();
        let mut replay = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(0).params());
        for s in fl.summaries().to_vec() {
            let params = replay.params().to_vec();
            let uploads = s
                .participants
                .iter()
                .map(|&c| Upload {
                    client: c,
                    weight: Client::weight(&clients[c]),
                    grad: clients[c].gradient(&params, s.round),
                })
                .collect();
            replay.run_round_uploads(uploads);
        }
        assert_eq!(
            bits(fl.params()),
            bits(replay.params()),
            "seed {seed}: networked final params diverge from replay"
        );
        for t in 0..rounds {
            assert_eq!(
                bits(&fl.history().model(t).expect("net model")),
                bits(&replay.history().model(t).expect("replay model")),
                "seed {seed}: round {t} model diverged"
            );
        }
        // The injected wire faults actually registered in the counters.
        assert!(
            report.torn + report.duplicates + report.skips + report.timeouts > 0,
            "seed {seed}: no wire fault left a trace"
        );
    }
}
