//! Property tests for the wire codec, mirroring the storage tier's
//! segment fault style: round-trips across the FNV word boundary,
//! torn-frame truncation at *every* byte offset, and trailer bit rot
//! surfacing as the typed checksum error.

use fuiov_net::wire::{decode_message, read_frame, Message, WireError};
use fuiov_net::ControlCode;
use fuiov_storage::segment::{
    check_record, encode_record, framed_len, RecordKind, HEADER_LEN, TRAILER_LEN,
};
use fuiov_storage::SegmentDecodeError;
use proptest::prelude::*;

/// The wire record kinds, indexable for proptest.
const WIRE_KINDS: [RecordKind; 5] = [
    RecordKind::Register,
    RecordKind::RoundModel,
    RecordKind::SignUpload,
    RecordKind::GradUpload,
    RecordKind::ForgetRequest,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sealed frames round-trip through `check_record` at every payload
    /// length 0..=67 — straddling the word-wise FNV boundary (the digest
    /// absorbs 8 bytes per multiply with a byte-wise tail, and the 27-byte
    /// header keeps the payload permanently misaligned).
    #[test]
    fn frame_roundtrips_at_all_small_lengths(
        payload in prop::collection::vec(any::<u8>(), 0..68),
        kind_idx in 0usize..WIRE_KINDS.len(),
        round in 0usize..1_000_000,
        base in any::<u64>(),
    ) {
        let kind = WIRE_KINDS[kind_idx];
        let rec = encode_record(kind, round, base, &payload);
        prop_assert_eq!(rec.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        prop_assert_eq!(framed_len(&rec), Some(rec.len()));
        let (k, r, b, p) = check_record(&rec).expect("sealed frame decodes");
        prop_assert_eq!(k, kind);
        prop_assert_eq!(r, round);
        prop_assert_eq!(b as u64, base);
        prop_assert_eq!(p, &payload[..]);
    }

    /// A frame cut at *any* byte boundary — from the first magic byte to
    /// one short of the trailer — is the typed truncation error, both in
    /// direct decode and through the socket reader; EOF exactly at the
    /// frame boundary is a clean close, never an error.
    #[test]
    fn torn_frame_at_every_byte_boundary_is_typed(
        payload in prop::collection::vec(any::<u8>(), 0..68),
        round in 0usize..1_000_000,
    ) {
        let rec = encode_record(RecordKind::GradUpload, round, 7, &payload);
        let mut buf = Vec::new();
        for cut in 0..rec.len() {
            prop_assert_eq!(
                check_record(&rec[..cut]).unwrap_err(),
                SegmentDecodeError::Truncated,
                "check_record cut at {}", cut
            );
            if cut > 0 {
                // cut == 0 is a clean close for the stream reader.
                let mut r = std::io::Cursor::new(rec[..cut].to_vec());
                prop_assert_eq!(
                    read_frame(&mut r, &mut buf).unwrap_err(),
                    WireError::Frame(SegmentDecodeError::Truncated),
                    "read_frame cut at {}", cut
                );
            }
        }
        let mut r = std::io::Cursor::new(rec.clone());
        prop_assert!(read_frame(&mut r, &mut buf).expect("whole frame"));
        prop_assert_eq!(&buf, &rec);
        prop_assert!(!read_frame(&mut r, &mut buf).expect("clean close"));
    }

    /// Flipping any single bit of the FNV trailer is the typed checksum
    /// error — never a garbage decode.
    #[test]
    fn trailer_bit_flip_is_typed_checksum_error(
        payload in prop::collection::vec(any::<u8>(), 0..68),
        bit in 0usize..64,
    ) {
        let mut rec = encode_record(RecordKind::SignUpload, 3, 11, &payload);
        let n = rec.len();
        rec[n - TRAILER_LEN + bit / 8] ^= 1 << (bit % 8);
        match check_record(&rec) {
            Err(SegmentDecodeError::BadChecksum { expected, found }) => {
                prop_assert_ne!(expected, found);
            }
            other => prop_assert!(false, "expected BadChecksum, got {:?}", other),
        }
        match decode_message(&rec, payload.len() * 4) {
            Err(WireError::Frame(SegmentDecodeError::BadChecksum { .. })) => {}
            other => prop_assert!(false, "expected wire BadChecksum, got {:?}", other),
        }
    }

    /// Flipping any single payload bit is also caught by the seal — the
    /// word-wise digest covers header *and* payload.
    #[test]
    fn payload_bit_flip_is_typed_checksum_error(
        payload in prop::collection::vec(any::<u8>(), 1..68),
        bit_seed in any::<u64>(),
    ) {
        let mut rec = encode_record(RecordKind::RoundModel, 5, 0, &payload);
        let bit = (bit_seed as usize) % (payload.len() * 8);
        rec[HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
        prop_assert!(matches!(
            check_record(&rec),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
    }

    /// Wire messages round-trip end to end through encode + decode for
    /// arbitrary gradients — the f32 payloads are bit-exact.
    #[test]
    fn grad_upload_roundtrips_bitwise(
        grad in prop::collection::vec(any::<u32>().prop_map(f32::from_bits), 0..17),
        round in 0usize..1000,
        client in 0usize..64,
    ) {
        let mut rec = Vec::new();
        let mut scratch = Vec::new();
        fuiov_net::wire::encode_grad_upload_into(&mut rec, &mut scratch, round, client, &grad);
        match decode_message(&rec, grad.len()).expect("decodes") {
            Message::GradUpload { round: r, client: c, grad: g } => {
                prop_assert_eq!((r, c), (round, client));
                let bits: Vec<u32> = g.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = grad.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(bits, want);
            }
            other => prop_assert!(false, "wrong message {:?}", other),
        }
    }

    /// Control frames survive arbitrary args; unknown control codes are
    /// typed, not panics.
    #[test]
    fn control_frames_roundtrip(arg in any::<u64>()) {
        for code in [ControlCode::Done, ControlCode::RegisterAck, ControlCode::Skip] {
            let rec = fuiov_net::wire::encode_control(code, arg);
            prop_assert_eq!(
                decode_message(&rec, 0).expect("decodes"),
                Message::Control { code, arg }
            );
        }
    }
}
