//! Socket transport: TCP and Unix-domain listeners/connections behind one
//! enum, plus the vectored-write fast path the round broadcast rides on.
//!
//! Addresses are spelled `tcp:HOST:PORT` or `unix:/path/to.sock`; a bare
//! `HOST:PORT` means TCP. `FUIOV_NET_ADDR` selects the address at runtime
//! (default `tcp:127.0.0.1:0` — loopback, ephemeral port).

use std::fmt;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Environment knob naming the listen/dial address.
pub const ENV_ADDR: &str = "FUIOV_NET_ADDR";

/// A parsed transport address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    /// TCP `host:port` (port `0` = ephemeral; resolve via
    /// [`Listener::local_addr`] after binding).
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl NetAddr {
    /// Parses `tcp:HOST:PORT`, `unix:/path`, or bare `HOST:PORT` (TCP).
    pub fn parse(s: &str) -> NetAddr {
        if let Some(path) = s.strip_prefix("unix:") {
            NetAddr::Unix(PathBuf::from(path))
        } else if let Some(hp) = s.strip_prefix("tcp:") {
            NetAddr::Tcp(hp.to_string())
        } else {
            NetAddr::Tcp(s.to_string())
        }
    }

    /// Reads [`ENV_ADDR`], defaulting to loopback TCP on an ephemeral
    /// port.
    pub fn from_env() -> NetAddr {
        match std::env::var(ENV_ADDR) {
            Ok(s) if !s.is_empty() => NetAddr::parse(&s),
            _ => NetAddr::Tcp("127.0.0.1:0".to_string()),
        }
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            NetAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bound listening socket.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (unlinks a stale socket file on bind).
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`. For Unix sockets a stale file at the path is
    /// unlinked first (crashed predecessor).
    ///
    /// # Errors
    ///
    /// Propagates the OS bind failure.
    pub fn bind(addr: &NetAddr) -> io::Result<Listener> {
        match addr {
            NetAddr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            NetAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The resolved address — for TCP this carries the real port even
    /// when bound ephemeral, so clients can dial it.
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<NetAddr> {
        match self {
            Listener::Tcp(l) => Ok(NetAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(NetAddr::Unix(path.to_path_buf()))
            }
        }
    }

    /// Blocks for the next inbound connection.
    ///
    /// # Errors
    ///
    /// Propagates the OS accept failure.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// One established connection (either family), usable from both ends.
pub enum Conn {
    /// TCP stream (Nagle disabled — frames are latency-bound).
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the OS connect failure.
    pub fn connect(addr: &NetAddr) -> io::Result<Conn> {
        match addr {
            NetAddr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            NetAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Clones the descriptor so reader and writer can live on different
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates the OS dup failure.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Bounds how long a blocking read may wait (`None` = forever).
    ///
    /// # Errors
    ///
    /// Propagates the OS setsockopt failure.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Half- or full-closes the connection; an error here is ignorable
    /// (the peer may already be gone).
    pub fn shutdown(&self, how: Shutdown) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(how),
            Conn::Unix(s) => s.shutdown(how),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write_vectored(bufs),
            Conn::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Writes one frame as `header‖payload‖trailer` with vectored I/O — the
/// broadcast fast path. The payload is serialized (and its checksum
/// sealed) once per round; per client this is a single `writev` syscall
/// in the common case, never a payload copy.
///
/// # Errors
///
/// Propagates socket write failures; a peer that accepts zero bytes
/// surfaces as [`io::ErrorKind::WriteZero`].
pub fn write_frame<W: Write>(
    w: &mut W,
    header: &[u8],
    payload: &[u8],
    trailer: &[u8],
) -> io::Result<()> {
    let total = header.len() + payload.len() + trailer.len();
    let mut written = 0usize;
    while written < total {
        let mut bufs = [IoSlice::new(&[]), IoSlice::new(&[]), IoSlice::new(&[])];
        let mut n = 0usize;
        let mut skip = written;
        for part in [header, payload, trailer] {
            if skip >= part.len() {
                skip -= part.len();
                continue;
            }
            bufs[n] = IoSlice::new(&part[skip..]);
            skip = 0;
            n += 1;
        }
        match w.write_vectored(&bufs[..n]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(k) => written += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_covers_all_spellings() {
        assert_eq!(
            NetAddr::parse("tcp:127.0.0.1:9000"),
            NetAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            NetAddr::parse("unix:/tmp/fuiov.sock"),
            NetAddr::Unix(PathBuf::from("/tmp/fuiov.sock"))
        );
        assert_eq!(
            NetAddr::parse("127.0.0.1:9000"),
            NetAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(NetAddr::parse("tcp:[::1]:80").to_string(), "tcp:[::1]:80");
        assert_eq!(
            NetAddr::parse("unix:/x/y.sock").to_string(),
            "unix:/x/y.sock"
        );
    }

    #[test]
    fn write_frame_handles_partial_sinks() {
        // A sink that accepts at most 3 bytes per call exercises the
        // resume-at-offset slice rebuilding.
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (h, p, t) = (
            b"HEADERXX".as_slice(),
            b"payload-bytes".as_slice(),
            b"TRAILERY".as_slice(),
        );
        let mut sink = Dribble(Vec::new());
        write_frame(&mut sink, h, p, t).unwrap();
        let mut want = Vec::new();
        want.extend_from_slice(h);
        want.extend_from_slice(p);
        want.extend_from_slice(t);
        assert_eq!(sink.0, want);
    }

    #[test]
    fn tcp_loopback_round_trips_a_frame() {
        let listener = Listener::bind(&NetAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut c = Conn::connect(&addr).unwrap();
        c.write_all(b"hello").unwrap();
        assert_eq!(&h.join().unwrap(), b"hello");
    }

    #[test]
    fn unix_loopback_round_trips_a_frame() {
        let dir = std::env::temp_dir().join(format!("fuiov-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let listener = Listener::bind(&NetAddr::Unix(path.clone())).unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut c = Conn::connect(&addr).unwrap();
        c.write_all(b"world").unwrap();
        assert_eq!(&h.join().unwrap(), b"world");
        let _ = std::fs::remove_file(&path);
        // Re-binding the same path must succeed (stale-file unlink).
        let _relisten = Listener::bind(&NetAddr::Unix(path)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
