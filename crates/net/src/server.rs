//! The networked round loop: accept pool, per-round inbox, and the
//! transport seam into [`fuiov_fl::Server`].
//!
//! # Determinism boundary
//!
//! The wire is allowed to be nondeterministic — threads race, uploads
//! arrive in whatever order the scheduler produces. Determinism is
//! restored at exactly one point: the round inbox buffers every upload in
//! a `BTreeMap<ClientId, _>` and drains it in *flat client order* before
//! handing the batch to [`fuiov_fl::Server::run_round_uploads`]. Given
//! the same participation set, a networked round is therefore bitwise
//! identical to the in-process loop — the testkit oracle pins this.
//!
//! # Concurrency model (std-only threads)
//!
//! One accept thread runs for the whole serve; it spawns one handler
//! thread per connection, bounded by [`NetConfig::max_threads`] (excess
//! connections wait in the kernel backlog). Handlers parse frames with
//! per-connection reusable scratch ([`AVec`] for `f32` decode, a `Vec`
//! for the frame) and push into the shared inbox guarded by one
//! `Mutex`/`Condvar` pair. The round loop serializes the model payload
//! once per round, seals it once ([`frame_parts`]), and issues one
//! vectored write per client — the broadcast never copies the payload.

use crate::registry::{Registration, Registry};
use crate::transport::{write_frame, Conn, Listener, NetAddr};
use crate::wire::{
    decode_message, encode_control, read_frame_idle, round_model_payload, ControlCode, Message,
    WireError,
};
use fuiov_fl::{Server, Upload};
use fuiov_obs::counter;
use fuiov_storage::segment::{frame_parts, RecordKind, HEADER_LEN, TRAILER_LEN};
use fuiov_storage::{ClientId, Round, SegmentDecodeError};
use fuiov_tensor::simd::AVec;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment knob bounding the handler pool (default 32).
pub const ENV_THREADS: &str = "FUIOV_NET_THREADS";
/// Environment knob for the per-round deadline in milliseconds
/// (default 5000).
pub const ENV_DEADLINE_MS: &str = "FUIOV_NET_DEADLINE_MS";

const FRAME_OVERHEAD: u64 = (HEADER_LEN + TRAILER_LEN) as u64;

/// What vehicles upload each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadMode {
    /// Full-precision gradients (`4·d` payload bytes per upload).
    FullF32,
    /// 2-bit sign-compressed directions (`⌈d/4⌉` payload bytes).
    Sign2Bit,
}

/// Networked-plane configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Where to listen.
    pub addr: NetAddr,
    /// How many vehicles must register before round 0 opens.
    pub expected_clients: usize,
    /// Upload encoding vehicles are expected to use.
    pub mode: UploadMode,
    /// Per-round upload deadline; vehicles silent past it are dropouts.
    pub round_deadline: Duration,
    /// Handler-pool bound (concurrent connections served).
    pub max_threads: usize,
}

impl NetConfig {
    /// Config for `expected_clients` vehicles at `addr`, with the
    /// deadline and pool bound taken from [`ENV_DEADLINE_MS`] /
    /// [`ENV_THREADS`] (defaults 5000 ms / 32).
    pub fn new(addr: NetAddr, expected_clients: usize) -> Self {
        let deadline_ms = env_u64(ENV_DEADLINE_MS, 5000);
        let max_threads = env_u64(ENV_THREADS, 32).max(1) as usize;
        NetConfig {
            addr,
            expected_clients,
            mode: UploadMode::FullF32,
            round_deadline: Duration::from_millis(deadline_ms),
            max_threads,
        }
    }

    /// Selects the upload encoding.
    pub fn with_mode(mut self, mode: UploadMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the per-round deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.round_deadline = d;
        self
    }

    /// Overrides the handler-pool bound (clamped to ≥ 1).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n.max(1);
        self
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Networked-plane failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Socket-level failure.
    Io(String),
    /// Protocol failure on a connection the server itself drove.
    Wire(WireError),
    /// Not enough vehicles registered before the deadline.
    Registration {
        /// How many made it.
        registered: usize,
        /// How many were expected.
        expected: usize,
    },
    /// Vehicles disagree on the model dimension, or disagree with the
    /// server's parameter vector.
    DimMismatch {
        /// The server's dimension.
        server: usize,
        /// What the registry reports (`None` = vehicles disagree among
        /// themselves).
        vehicles: Option<usize>,
    },
    /// `serve` was called twice on one `NetServer`.
    ListenerConsumed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net i/o: {e}"),
            NetError::Wire(e) => write!(f, "net wire: {e}"),
            NetError::Registration {
                registered,
                expected,
            } => write!(
                f,
                "registration deadline: {registered}/{expected} vehicles announced"
            ),
            NetError::DimMismatch { server, vehicles } => {
                write!(
                    f,
                    "model dim mismatch: server {server}, vehicles {vehicles:?}"
                )
            }
            NetError::ListenerConsumed => write!(f, "serve() already ran on this NetServer"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Exact accounting for one `serve` run. Payload counters cover only
/// *accepted* round-pipeline frames (model broadcasts down, first-wins
/// uploads up), so in a clean run they reconcile bit-for-bit with
/// [`fuiov_fl::comms::round_bytes`]; framing overhead (header + trailer,
/// 35 B/frame) and protocol chatter are tallied separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetRunReport {
    /// Rounds driven.
    pub rounds: usize,
    /// Vehicles registered when round 0 opened.
    pub clients: usize,
    /// Model-broadcast payload bytes written (`rounds · n · 4d` clean).
    pub tx_payload: u64,
    /// Upload payload bytes accepted (`rounds · n · 4d` full / `⌈d/4⌉`
    /// sign, clean).
    pub rx_payload: u64,
    /// Framing overhead on broadcasts.
    pub tx_overhead: u64,
    /// Framing overhead on accepted uploads.
    pub rx_overhead: u64,
    /// Duplicate uploads discarded (first-wins).
    pub duplicates: u64,
    /// Uploads for a round that wasn't open.
    pub stale: u64,
    /// Connections dropped on a torn frame.
    pub torn: u64,
    /// Explicit per-round skips (voluntary dropouts).
    pub skips: u64,
    /// Rounds closed by deadline with vehicles still silent.
    pub timeouts: u64,
    /// Unlearning requests received over the wire, in arrival order.
    pub forget_requests: Vec<(ClientId, Vec<ClientId>)>,
}

/// Shared state between accept thread, handlers, and the round loop.
struct Inbox {
    registry: Registry,
    /// Per-connection writers; each socket's writes are serialized by its
    /// own mutex so a registration ack can't interleave with a broadcast.
    writers: BTreeMap<ClientId, Arc<Mutex<Conn>>>,
    /// The round currently accepting uploads.
    round: Option<Round>,
    /// First-wins decoded uploads for the open round, keyed (= sorted)
    /// by client — the determinism boundary.
    grads: BTreeMap<ClientId, Vec<f32>>,
    /// Clients that answered the open round (upload or skip).
    answered: BTreeSet<ClientId>,
    /// Registered clients currently connected.
    live: usize,
    rx_payload: u64,
    rx_overhead: u64,
    duplicates: u64,
    stale: u64,
    torn: u64,
    skips: u64,
    forget: Vec<(ClientId, Vec<ClientId>)>,
}

struct Shared {
    inbox: Mutex<Inbox>,
    cv: Condvar,
    mode: UploadMode,
    done: AtomicBool,
}

/// The networked FL server: binds, accepts vehicles, and drives rounds
/// through an in-process [`fuiov_fl::Server`] so the two planes share
/// every line of round arithmetic.
pub struct NetServer {
    cfg: NetConfig,
    listener: Option<Listener>,
    addr: NetAddr,
}

impl NetServer {
    /// Binds the configured address (resolving an ephemeral TCP port).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind(cfg: NetConfig) -> Result<NetServer, NetError> {
        let listener = Listener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        Ok(NetServer {
            cfg,
            listener: Some(listener),
            addr,
        })
    }

    /// The resolved listen address vehicles should dial.
    pub fn local_addr(&self) -> &NetAddr {
        &self.addr
    }

    /// Runs `rounds` federated rounds over the wire, mutating `fl`
    /// exactly as the in-process loop would. One-shot per `NetServer`.
    ///
    /// # Errors
    ///
    /// [`NetError::Registration`] when fewer than
    /// [`NetConfig::expected_clients`] announce within the deadline,
    /// [`NetError::DimMismatch`] when registered dimensions disagree with
    /// `fl`, [`NetError::ListenerConsumed`] on a second call, `Io` for
    /// listener failures.
    pub fn serve(&mut self, fl: &mut Server, rounds: usize) -> Result<NetRunReport, NetError> {
        let listener = self.listener.take().ok_or(NetError::ListenerConsumed)?;
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Inbox {
                registry: Registry::new(),
                writers: BTreeMap::new(),
                round: None,
                grads: BTreeMap::new(),
                answered: BTreeSet::new(),
                live: 0,
                rx_payload: 0,
                rx_overhead: 0,
                duplicates: 0,
                stale: 0,
                torn: 0,
                skips: 0,
                forget: Vec::new(),
            }),
            cv: Condvar::new(),
            mode: self.cfg.mode,
            done: AtomicBool::new(false),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            let max_threads = self.cfg.max_threads;
            std::thread::spawn(move || accept_loop(listener, shared, max_threads))
        };

        let run = self.drive_rounds(fl, rounds, &shared);

        // Wind down whether the run succeeded or not: Done broadcast,
        // socket shutdowns, wake the accept thread, join everything.
        let writers: Vec<Arc<Mutex<Conn>>> = {
            let inbox = shared.inbox.lock().expect("net inbox poisoned");
            inbox.writers.values().cloned().collect()
        };
        let done_frame = encode_control(ControlCode::Done, 0);
        for w in &writers {
            let mut conn = w.lock().expect("net writer poisoned");
            let _ = std::io::Write::write_all(&mut *conn, &done_frame);
            conn.shutdown(Shutdown::Both);
        }
        shared.done.store(true, Ordering::SeqCst);
        if let Ok(c) = Conn::connect(&self.addr) {
            c.shutdown(Shutdown::Both);
        }
        let handlers = accept.join().expect("net accept thread panicked");
        for h in handlers {
            let _ = h.join();
        }

        let mut report = run?;
        let inbox = shared.inbox.lock().expect("net inbox poisoned");
        report.rx_payload = inbox.rx_payload;
        report.rx_overhead = inbox.rx_overhead;
        report.duplicates = inbox.duplicates;
        report.stale = inbox.stale;
        report.torn = inbox.torn;
        report.skips = inbox.skips;
        report.forget_requests = inbox.forget.clone();
        Ok(report)
    }

    /// Registration barrier + the per-round broadcast/collect loop.
    fn drive_rounds(
        &self,
        fl: &mut Server,
        rounds: usize,
        shared: &Arc<Shared>,
    ) -> Result<NetRunReport, NetError> {
        let deadline = self.cfg.round_deadline;
        let expected = self.cfg.expected_clients;

        // Registration barrier.
        let start = Instant::now();
        {
            let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
            while inbox.registry.len() < expected {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    return Err(NetError::Registration {
                        registered: inbox.registry.len(),
                        expected,
                    });
                }
                let (g, _) = shared
                    .cv
                    .wait_timeout(inbox, deadline - elapsed)
                    .expect("net inbox poisoned");
                inbox = g;
            }
            match inbox.registry.common_dim() {
                Some(d) if d == fl.params().len() => {}
                vehicles => {
                    return Err(NetError::DimMismatch {
                        server: fl.params().len(),
                        vehicles,
                    })
                }
            }
        }

        let mut report = NetRunReport {
            rounds,
            clients: expected,
            ..NetRunReport::default()
        };
        let mut payload = Vec::new();

        for _ in 0..rounds {
            let t = fl.round();

            // Open the round *before* broadcasting so no upload can race
            // the round marker.
            let writers: Vec<Arc<Mutex<Conn>>> = {
                let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                inbox.round = Some(t);
                inbox.grads.clear();
                inbox.answered.clear();
                inbox.writers.values().cloned().collect()
            };

            // Serialize + seal once; one vectored write per client.
            round_model_payload(fl.params(), &mut payload);
            let (header, trailer) = frame_parts(RecordKind::RoundModel, t, 0, &payload);
            for w in &writers {
                let mut conn = w.lock().expect("net writer poisoned");
                match write_frame(&mut *conn, &header, &payload, &trailer) {
                    Ok(()) => {
                        report.tx_payload += payload.len() as u64;
                        report.tx_overhead += FRAME_OVERHEAD;
                        counter!("net.bytes_tx").add(payload.len() as u64);
                        counter!("net.overhead_bytes_tx").add(FRAME_OVERHEAD);
                    }
                    Err(_) => {
                        // The handler sees the dead socket on its next
                        // read and runs the disconnect path; the vehicle
                        // surfaces as a dropout below.
                        counter!("net.broadcast_failures").inc();
                        conn.shutdown(Shutdown::Both);
                    }
                }
            }

            // Collect until every live vehicle answered or the deadline.
            let round_start = Instant::now();
            let uploads: Vec<Upload> = {
                let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                loop {
                    if inbox.live == 0 || inbox.answered.len() >= inbox.live {
                        break;
                    }
                    let elapsed = round_start.elapsed();
                    if elapsed >= deadline {
                        report.timeouts += 1;
                        counter!("net.round_timeouts").inc();
                        break;
                    }
                    let (g, _) = shared
                        .cv
                        .wait_timeout(inbox, deadline - elapsed)
                        .expect("net inbox poisoned");
                    inbox = g;
                }
                inbox.round = None;
                let grads = std::mem::take(&mut inbox.grads);
                // BTreeMap drain order = flat client order: this is the
                // whole determinism boundary.
                grads
                    .into_iter()
                    .map(|(client, grad)| Upload {
                        client,
                        weight: inbox.registry.get(client).map(|r| r.weight).unwrap_or(0.0),
                        grad,
                    })
                    .collect()
            };

            fl.run_round_uploads(uploads);
        }

        Ok(report)
    }
}

/// Accept loop: spawns one handler per connection, bounded by
/// `max_threads` live handlers (excess connections wait in the kernel
/// backlog until a slot frees).
fn accept_loop(
    listener: Listener,
    shared: Arc<Shared>,
    max_threads: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handlers = Vec::new();
    let live_handlers = Arc::new((Mutex::new(0usize), Condvar::new()));
    loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.done.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.done.load(Ordering::SeqCst) {
            conn.shutdown(Shutdown::Both);
            break;
        }
        {
            let (count, cv) = &*live_handlers;
            let mut n = count.lock().expect("net pool poisoned");
            while *n >= max_threads {
                n = cv.wait(n).expect("net pool poisoned");
            }
            *n += 1;
        }
        let shared = Arc::clone(&shared);
        let pool = Arc::clone(&live_handlers);
        handlers.push(std::thread::spawn(move || {
            handle_conn(conn, &shared);
            let (count, cv) = &*pool;
            *count.lock().expect("net pool poisoned") -= 1;
            cv.notify_one();
        }));
    }
    handlers
}

/// One connection's read loop: register, then fold uploads into the
/// inbox until the peer closes or the frame stream breaks.
fn handle_conn(mut conn: Conn, shared: &Shared) {
    counter!("net.connections").inc();
    // Short read timeout so the loop can poll the done flag: a handler
    // must never block indefinitely on a silent peer, or wind-down could
    // hang joining it (e.g. a vehicle that reconnected after the final
    // Done sweep and is itself blocked reading).
    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
    let mut frame = Vec::new();
    let mut scratch = AVec::new();
    let mut registered: Option<(ClientId, usize, Arc<Mutex<Conn>>)> = None;

    let result = conn_loop(&mut conn, shared, &mut frame, &mut scratch, &mut registered);

    if let Err(e) = &result {
        match e {
            WireError::Frame(SegmentDecodeError::Truncated) => {
                counter!("net.torn_frames").inc();
                let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                inbox.torn += 1;
            }
            WireError::Frame(_)
            | WireError::Oversize(_)
            | WireError::Malformed(_)
            | WireError::NotAWireKind(_)
            | WireError::BadControl(_) => {
                counter!("net.protocol_errors").inc();
            }
            WireError::TimedOut | WireError::Io(_) => counter!("net.io_errors").inc(),
        }
        counter!("net.dropped_connections").inc();
    }

    conn.shutdown(Shutdown::Both);
    let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
    if let Some((client, _, writer)) = registered {
        // Remove the writer only if it is still *ours*: a vehicle that
        // dropped and re-registered already replaced the map entry, and
        // this stale handler must not strip the live connection's writer.
        if inbox
            .writers
            .get(&client)
            .is_some_and(|w| Arc::ptr_eq(w, &writer))
        {
            inbox.writers.remove(&client);
        }
        inbox.live -= 1;
    }
    drop(inbox);
    shared.cv.notify_all();
}

fn conn_loop(
    conn: &mut Conn,
    shared: &Shared,
    frame: &mut Vec<u8>,
    scratch: &mut AVec,
    registered: &mut Option<(ClientId, usize, Arc<Mutex<Conn>>)>,
) -> Result<(), WireError> {
    loop {
        // Keep waiting through read timeouts until the serve loop raises
        // its done flag, then exit cleanly — this is what bounds every
        // handler's lifetime during wind-down.
        match read_frame_idle(conn, frame, || !shared.done.load(Ordering::SeqCst)) {
            Ok(true) => {}
            Ok(false) => return Ok(()),
            Err(WireError::TimedOut) => return Ok(()),
            Err(e) => return Err(e),
        }
        let dim = registered.as_ref().map_or(0, |(_, d, _)| *d);
        let msg = decode_message(frame, dim)?;
        let payload_len = (frame.len() - HEADER_LEN - TRAILER_LEN) as u64;
        match msg {
            Message::Register {
                client,
                weight,
                dim,
            } => {
                let writer = Arc::new(Mutex::new(conn.try_clone()?));
                {
                    let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                    if inbox.registry.register(Registration {
                        client,
                        weight,
                        dim,
                    }) {
                        counter!("net.registrations").inc();
                    }
                    inbox.writers.insert(client, Arc::clone(&writer));
                    if registered.is_none() {
                        inbox.live += 1;
                    }
                }
                *registered = Some((client, dim, Arc::clone(&writer)));
                shared.cv.notify_all();
                let ack = encode_control(ControlCode::RegisterAck, client as u64);
                let mut w = writer.lock().expect("net writer poisoned");
                std::io::Write::write_all(&mut *w, &ack)?;
            }
            Message::GradUpload {
                round,
                client,
                grad,
            } => {
                if shared.mode != UploadMode::FullF32 {
                    counter!("net.protocol_errors").inc();
                    continue;
                }
                intake(shared, round, client, grad, payload_len);
            }
            Message::SignUpload { round, client, dir } => {
                if shared.mode != UploadMode::Sign2Bit {
                    counter!("net.protocol_errors").inc();
                    continue;
                }
                scratch.resize(dir.len(), 0.0);
                dir.decode_into(scratch.as_mut_slice());
                intake(
                    shared,
                    round,
                    client,
                    scratch.as_slice().to_vec(),
                    payload_len,
                );
            }
            Message::ForgetRequest { from, clients } => {
                counter!("net.forget_requests").inc();
                let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                inbox.forget.push((from, clients));
                drop(inbox);
                shared.cv.notify_all();
            }
            Message::Control {
                code: ControlCode::Skip,
                arg,
            } => {
                let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
                if inbox.round == Some(arg as Round) {
                    if let Some((client, _, _)) = registered.as_ref() {
                        inbox.answered.insert(*client);
                        inbox.skips += 1;
                        counter!("net.skips").inc();
                    }
                }
                drop(inbox);
                shared.cv.notify_all();
            }
            Message::Control {
                code: ControlCode::Done,
                ..
            } => return Ok(()),
            Message::RoundModel { .. }
            | Message::Control {
                code: ControlCode::RegisterAck,
                ..
            } => {
                // Server-to-client messages arriving at the server are a
                // protocol violation; drop the connection.
                return Err(WireError::Malformed("server-bound message on server"));
            }
        }
    }
}

/// First-wins intake of one decoded upload for the open round.
fn intake(shared: &Shared, round: Round, client: ClientId, grad: Vec<f32>, payload_len: u64) {
    let mut inbox = shared.inbox.lock().expect("net inbox poisoned");
    if inbox.round != Some(round) {
        inbox.stale += 1;
        counter!("net.stale_uploads").inc();
        return;
    }
    if inbox.grads.contains_key(&client) {
        inbox.duplicates += 1;
        counter!("net.duplicate_uploads").inc();
        return;
    }
    inbox.grads.insert(client, grad);
    inbox.answered.insert(client);
    inbox.rx_payload += payload_len;
    inbox.rx_overhead += FRAME_OVERHEAD;
    counter!("net.bytes_rx").add(payload_len);
    counter!("net.overhead_bytes_rx").add(FRAME_OVERHEAD);
    drop(inbox);
    shared.cv.notify_all();
}
