//! The vehicle side of the wire: connect, register, answer rounds, with
//! capped-exponential retry whose jitter is *seeded* — a fault-matrix run
//! at a given seed reconnects at exactly the same instants every time.

use crate::server::{NetError, UploadMode, ENV_DEADLINE_MS};
use crate::transport::{Conn, NetAddr};
use crate::wire::{
    encode_control, encode_forget_request, encode_grad_upload_into, encode_register,
    encode_sign_upload_into, read_frame, ControlCode, WireError,
};
use fuiov_fl::Client;
use fuiov_obs::counter;
use fuiov_storage::segment::{check_record, RecordKind, HEADER_LEN, TRAILER_LEN};
use fuiov_storage::{ClientId, GradientDirection, Round};
use fuiov_tensor::rng::{rng_for, streams};
use fuiov_tensor::simd::AVec;
use rand::Rng;
use std::io::Write;
use std::net::Shutdown;
use std::time::Duration;

/// Capped exponential backoff with seeded jitter.
///
/// Attempt `k` sleeps in `[b·2ᵏ/2, b·2ᵏ]` (capped), the jitter drawn
/// from the [`streams::NET`] RNG stream keyed by `(seed, client,
/// attempt)` — deterministic per seed, decorrelated across vehicles so a
/// cohort knocked offline together doesn't thunder back in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Connection attempts per (re)connect sequence before giving up.
    pub max_attempts: u32,
    /// Backoff for the first retry.
    pub base: Duration,
    /// Exponential growth cap.
    pub cap: Duration,
    /// Jitter seed (reuse the experiment seed for reproducible runs).
    pub seed: u64,
}

impl RetryPolicy {
    /// Default policy: 5 attempts, 10 ms base, 500 ms cap.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed,
        }
    }

    /// The sleep before retry `attempt` (0-based) for `client`.
    pub fn backoff(&self, client: ClientId, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let span = exp.as_micros().max(2) as u64;
        let mut rng = rng_for(
            self.seed,
            streams::NET + client as u64 * 131 + attempt as u64,
        );
        let jitter = rng.gen_range(0..span / 2);
        Duration::from_micros(span / 2 + jitter)
    }
}

/// Vehicle-side configuration.
#[derive(Debug, Clone)]
pub struct VehicleConfig {
    /// Server address to dial.
    pub addr: NetAddr,
    /// Upload encoding (must match the server's [`UploadMode`]).
    pub mode: UploadMode,
    /// Sign-quantization threshold for [`UploadMode::Sign2Bit`].
    pub quantize_delta: f32,
    /// Reconnect policy.
    pub retry: RetryPolicy,
    /// Per-round deadline: the longest a read may block before the
    /// vehicle treats the connection as dead and re-dials. Taken from
    /// [`ENV_DEADLINE_MS`] by [`VehicleConfig::new`] (default 5000 ms).
    pub round_deadline: Duration,
}

impl VehicleConfig {
    /// Full-precision uploads to `addr` with the default retry policy
    /// seeded by `seed`.
    pub fn new(addr: NetAddr, seed: u64) -> Self {
        let deadline_ms = std::env::var(ENV_DEADLINE_MS)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5000);
        VehicleConfig {
            addr,
            mode: UploadMode::FullF32,
            quantize_delta: 0.0,
            retry: RetryPolicy::new(seed),
            round_deadline: Duration::from_millis(deadline_ms),
        }
    }

    /// Switches to 2-bit sign uploads quantized at `delta`.
    pub fn with_sign_uploads(mut self, delta: f32) -> Self {
        self.mode = UploadMode::Sign2Bit;
        self.quantize_delta = delta;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the per-round deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.round_deadline = d;
        self
    }
}

/// What one vehicle did over its lifetime on the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VehicleReport {
    /// Rounds answered with an upload.
    pub uploads: usize,
    /// Rounds explicitly skipped (dropout hook said no).
    pub skips: usize,
    /// Successful reconnects after a drop.
    pub reconnects: u32,
    /// Upload payload bytes written.
    pub tx_payload: u64,
    /// Framing overhead written (uploads + protocol chatter).
    pub tx_overhead: u64,
}

/// A federated client speaking the wire protocol.
///
/// Wraps any [`fuiov_fl::Client`]; the `responds_in` dropout hook is
/// honoured by sending an explicit [`ControlCode::Skip`] so the server
/// can close the round without waiting out the deadline.
pub struct NetVehicle {
    cfg: VehicleConfig,
    client: Box<dyn Client>,
    dim: usize,
    forget_after: Option<(Round, Vec<ClientId>)>,
}

impl NetVehicle {
    /// Wraps `client`, which trains a `dim`-parameter model.
    pub fn new(cfg: VehicleConfig, client: Box<dyn Client>, dim: usize) -> Self {
        NetVehicle {
            cfg,
            client,
            dim,
            forget_after: None,
        }
    }

    /// Queues an unlearning request to submit right after answering
    /// `round` — exercises the forget plumbing end to end.
    pub fn with_forget_after(mut self, round: Round, clients: Vec<ClientId>) -> Self {
        self.forget_after = Some((round, clients));
        self
    }

    /// Runs until the server says [`ControlCode::Done`], reconnecting
    /// with backoff on drops.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`]/[`NetError::Wire`] once a reconnect sequence
    /// exhausts [`RetryPolicy::max_attempts`] — the vehicle then simply
    /// exits and the server sees it as a dropout, never a hang.
    pub fn run(mut self) -> Result<VehicleReport, NetError> {
        let mut report = VehicleReport::default();
        let mut frame = Vec::new();
        let mut scratch = AVec::new();
        let mut upload_buf = Vec::new();
        let mut payload_buf = Vec::new();
        let mut first = true;
        loop {
            let mut conn = self.connect_with_retry(first, &mut report)?;
            first = false;
            match self.session(
                &mut conn,
                &mut report,
                &mut frame,
                &mut scratch,
                &mut upload_buf,
                &mut payload_buf,
            ) {
                Ok(()) => return Ok(report),
                Err(e) => {
                    counter!("net.vehicle_drops").inc();
                    conn.shutdown(Shutdown::Both);
                    // Any session error — torn frame, timeout, reset —
                    // funnels into the same reconnect path.
                    let _ = e;
                }
            }
        }
    }

    /// Dials with capped, seeded backoff. `first` distinguishes the
    /// initial dial from a reconnect (for the report).
    fn connect_with_retry(
        &self,
        first: bool,
        report: &mut VehicleReport,
    ) -> Result<Conn, NetError> {
        let id = self.client.id();
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.cfg.retry.max_attempts {
            if attempt > 0 || !first {
                std::thread::sleep(self.cfg.retry.backoff(id, attempt));
            }
            match Conn::connect(&self.cfg.addr) {
                Ok(conn) => {
                    conn.set_read_timeout(Some(self.cfg.round_deadline))?;
                    if !first {
                        report.reconnects += 1;
                        counter!("net.vehicle_reconnects").inc();
                    }
                    return Ok(conn);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io(format!(
            "vehicle {id}: connect retries exhausted: {}",
            last.map_or_else(|| "no attempt".to_string(), |e| e.to_string())
        )))
    }

    /// One connected session: register, answer rounds until Done.
    fn session(
        &mut self,
        conn: &mut Conn,
        report: &mut VehicleReport,
        frame: &mut Vec<u8>,
        scratch: &mut AVec,
        upload_buf: &mut Vec<u8>,
        payload_buf: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let id = self.client.id();
        let hello = encode_register(id, self.client.weight(), self.dim);
        conn.write_all(&hello)?;
        report.tx_overhead += hello.len() as u64;

        loop {
            if !read_frame(conn, frame)? {
                // Server closed without Done: treat as a drop so the
                // retry path decides whether to re-dial.
                return Err(WireError::Io("server closed mid-session".to_string()));
            }
            let (kind, round, _base, payload) = check_record(frame)?;
            match kind {
                RecordKind::RoundModel => {
                    counter!("net.vehicle_bytes_rx").add(payload.len() as u64);
                    if payload.len() != self.dim * 4 {
                        return Err(WireError::Malformed("round-model length"));
                    }
                    // Decode into the reusable aligned scratch — the
                    // steady-state loop allocates nothing.
                    scratch.resize(self.dim, 0.0);
                    let out = scratch.as_mut_slice();
                    for (i, c) in payload.chunks_exact(4).enumerate() {
                        out[i] = f32::from_le_bytes(c.try_into().expect("4-byte chunk"));
                    }
                    if !self.client.responds_in(round) {
                        let skip = encode_control(ControlCode::Skip, round as u64);
                        conn.write_all(&skip)?;
                        report.skips += 1;
                        report.tx_overhead += skip.len() as u64;
                        continue;
                    }
                    let grad = self.client.gradient(scratch.as_slice(), round);
                    match self.cfg.mode {
                        UploadMode::FullF32 => {
                            encode_grad_upload_into(upload_buf, payload_buf, round, id, &grad);
                        }
                        UploadMode::Sign2Bit => {
                            let dir = GradientDirection::quantize(&grad, self.cfg.quantize_delta);
                            encode_sign_upload_into(upload_buf, round, id, &dir);
                        }
                    }
                    conn.write_all(upload_buf)?;
                    report.uploads += 1;
                    let payload_len = (upload_buf.len() - HEADER_LEN - TRAILER_LEN) as u64;
                    report.tx_payload += payload_len;
                    report.tx_overhead += (HEADER_LEN + TRAILER_LEN) as u64;
                    counter!("net.vehicle_bytes_tx").add(payload_len);
                    if let Some((after, _)) = &self.forget_after {
                        if *after == round {
                            let (_, clients) =
                                self.forget_after.take().expect("checked just above");
                            let req = encode_forget_request(id, &clients);
                            conn.write_all(&req)?;
                            report.tx_overhead += (HEADER_LEN + TRAILER_LEN) as u64;
                        }
                    }
                }
                RecordKind::Control => {
                    // RegisterAck and Done are the only server controls.
                    match round as u64 {
                        0 => return Ok(()), // Done
                        1 => continue,      // RegisterAck
                        other => return Err(WireError::BadControl(other)),
                    }
                }
                other => return Err(WireError::NotAWireKind(other.code())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_capped_and_decorrelated() {
        let p = RetryPolicy::new(42);
        // Deterministic per (seed, client, attempt).
        assert_eq!(p.backoff(3, 1), p.backoff(3, 1));
        // Different clients draw different jitter.
        assert_ne!(p.backoff(3, 1), p.backoff(4, 1));
        // Different seeds draw different jitter.
        assert_ne!(RetryPolicy::new(7).backoff(3, 1), p.backoff(3, 1));
        // Grows roughly exponentially and never exceeds the cap.
        for attempt in 0..12 {
            let d = p.backoff(0, attempt);
            let exp = p.base.saturating_mul(1 << attempt.min(16)).min(p.cap);
            assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d:?}");
            assert!(d <= p.cap);
        }
    }
}
