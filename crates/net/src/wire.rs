//! The wire codec: FUSG-framed protocol messages.
//!
//! Every message is one sealed record in exactly the
//! [`fuiov_storage::segment`] framing — magic, version, kind, two `u64`
//! header fields, length-prefixed payload, word-wise FNV-1a trailer — so
//! the wire inherits the storage tier's corruption taxonomy for free: a
//! torn frame is a typed [`SegmentDecodeError::Truncated`], bit rot is
//! `BadChecksum`, an alien stream is `BadMagic`. The header fields carry
//! the round and the client id, which keeps the round-pipeline payloads
//! *pure*: a [`Message::RoundModel`] payload is exactly the `4·d` raw
//! little-endian model bytes and a [`Message::SignUpload`] payload exactly
//! the `⌈d/4⌉` packed sign bytes, so the `net.bytes_*` counters reconcile
//! with [`fuiov_fl::comms::round_bytes`] *exactly*, not modulo framing.
//!
//! ```text
//! frame := magic:u32 | version:u16 | kind:u8 | round:u64 | client:u64
//!        | payload_len:u32 | payload | fnv1a64(header‖payload):u64
//! ```

use fuiov_storage::segment::{
    check_record, encode_record, framed_len, RecordKind, SegmentDecodeError, HEADER_LEN,
    TRAILER_LEN,
};
use fuiov_storage::{ClientId, GradientDirection, Round};
use std::error::Error;
use std::fmt;
use std::io::{ErrorKind, Read};

/// Upper bound on a single frame's payload. The length prefix is a `u32`,
/// so a corrupted-but-checksum-unseen header could otherwise ask the
/// reader to allocate 4 GiB before the trailer check ever runs.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Control codes carried in a [`Message::Control`] frame's `round` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCode {
    /// The server is done; vehicles should close their connections.
    Done,
    /// The server accepted a vehicle's registration.
    RegisterAck,
    /// A vehicle sitting a round out (dropout). The `arg` field carries
    /// the skipped round. An *explicit* skip (empty payload — zero
    /// accounted bytes) lets the server close the round the moment every
    /// live vehicle has answered instead of burning the deadline; the
    /// deadline remains the backstop for vehicles that died silently.
    Skip,
}

impl ControlCode {
    fn code(self) -> u64 {
        match self {
            ControlCode::Done => 0,
            ControlCode::RegisterAck => 1,
            ControlCode::Skip => 2,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(ControlCode::Done),
            1 => Some(ControlCode::RegisterAck),
            2 => Some(ControlCode::Skip),
            _ => None,
        }
    }
}

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A vehicle announcing itself: id, FedAvg weight, model dimension.
    Register {
        /// The announcing vehicle.
        client: ClientId,
        /// Its FedAvg weight `‖Dᵢ‖`.
        weight: f32,
        /// The model dimension it expects to train.
        dim: usize,
    },
    /// The round's global-model broadcast.
    RoundModel {
        /// The round being opened.
        round: Round,
        /// The global parameters (payload bytes are exactly `4·d`).
        params: Vec<f32>,
    },
    /// A 2-bit sign-compressed gradient upload (payload exactly `⌈d/4⌉`).
    SignUpload {
        /// The round the upload answers.
        round: Round,
        /// The uploading vehicle.
        client: ClientId,
        /// The packed direction.
        dir: GradientDirection,
    },
    /// A full-precision gradient upload (payload exactly `4·d`).
    GradUpload {
        /// The round the upload answers.
        round: Round,
        /// The uploading vehicle.
        client: ClientId,
        /// The gradient.
        grad: Vec<f32>,
    },
    /// A request to unlearn a set of vehicles.
    ForgetRequest {
        /// The submitting vehicle.
        from: ClientId,
        /// The vehicles to forget.
        clients: Vec<ClientId>,
    },
    /// A control frame.
    Control {
        /// What the frame asks for.
        code: ControlCode,
        /// Code-specific argument.
        arg: u64,
    },
}

/// Error on the wire. Frame-level corruption carries the storage tier's
/// typed [`SegmentDecodeError`]; everything else is protocol- or
/// socket-level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame failed the FUSG decode (torn, rotted, alien, …).
    Frame(SegmentDecodeError),
    /// A frame declared a payload larger than [`MAX_PAYLOAD`].
    Oversize(usize),
    /// A structurally valid frame whose payload doesn't parse as its
    /// kind's message (wrong length for the declared model dimension).
    Malformed(&'static str),
    /// A record kind that is not a wire message (e.g. a spilled keyframe
    /// fed to the socket).
    NotAWireKind(u8),
    /// An unknown control code.
    BadControl(u64),
    /// A socket read deadline elapsed with no complete frame.
    TimedOut,
    /// Socket-level I/O failure.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "wire frame: {e}"),
            WireError::Oversize(n) => write!(f, "wire frame declares oversize payload ({n} B)"),
            WireError::Malformed(what) => write!(f, "malformed wire payload: {what}"),
            WireError::NotAWireKind(k) => write!(f, "record kind {k} is not a wire message"),
            WireError::BadControl(c) => write!(f, "unknown control code {c}"),
            WireError::TimedOut => write!(f, "wire read timed out"),
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
        }
    }
}

impl Error for WireError {}

impl From<SegmentDecodeError> for WireError {
    fn from(e: SegmentDecodeError) -> Self {
        WireError::Frame(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes a [`Message::Register`] frame.
pub fn encode_register(client: ClientId, weight: f32, dim: usize) -> Vec<u8> {
    let mut payload = [0u8; 8];
    payload[0..4].copy_from_slice(&weight.to_le_bytes());
    payload[4..8].copy_from_slice(&(dim as u32).to_le_bytes());
    encode_record(RecordKind::Register, 0, client as u64, &payload)
}

/// Serializes a parameter vector as a round-model payload (raw `f32` LE,
/// exactly `4·d` bytes) into a reusable scratch buffer.
pub fn round_model_payload(params: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(params.len() * 4);
    for p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
}

/// Encodes a [`Message::RoundModel`] frame (convenience; the broadcast
/// hot path uses [`round_model_payload`] +
/// [`fuiov_storage::segment::frame_parts`] instead, so the payload is
/// serialized once per round, not once per client).
pub fn encode_round_model(round: Round, params: &[f32]) -> Vec<u8> {
    let mut payload = Vec::new();
    round_model_payload(params, &mut payload);
    encode_record(RecordKind::RoundModel, round, 0, &payload)
}

/// Encodes a [`Message::GradUpload`] frame into `buf` (cleared first).
pub fn encode_grad_upload_into(
    buf: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    round: Round,
    client: ClientId,
    grad: &[f32],
) {
    round_model_payload(grad, scratch);
    fuiov_storage::segment::frame_into(buf, RecordKind::GradUpload, round, client as u64, scratch);
}

/// Encodes a [`Message::SignUpload`] frame into `buf` (cleared first).
/// The payload is the packed 2-bit words verbatim.
pub fn encode_sign_upload_into(
    buf: &mut Vec<u8>,
    round: Round,
    client: ClientId,
    dir: &GradientDirection,
) {
    fuiov_storage::segment::frame_into(
        buf,
        RecordKind::SignUpload,
        round,
        client as u64,
        dir.packed_bytes(),
    );
}

/// Encodes a [`Message::ForgetRequest`] frame.
pub fn encode_forget_request(from: ClientId, clients: &[ClientId]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(clients.len() * 8);
    for &c in clients {
        payload.extend_from_slice(&(c as u64).to_le_bytes());
    }
    encode_record(RecordKind::ForgetRequest, 0, from as u64, &payload)
}

/// Encodes a [`Message::Control`] frame.
pub fn encode_control(code: ControlCode, arg: u64) -> Vec<u8> {
    encode_record(RecordKind::Control, code.code() as Round, arg, &[])
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn f32s_from(payload: &[u8], what: &'static str) -> Result<Vec<f32>, WireError> {
    if !payload.len().is_multiple_of(4) {
        return Err(WireError::Malformed(what));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

/// Decodes one sealed record into a [`Message`]. `dim` is the model
/// dimension the connection registered (sign payloads carry no length of
/// their own — that is what keeps them at exactly `⌈d/4⌉` bytes).
///
/// # Errors
///
/// [`WireError::Frame`] for framing/checksum failures, `Malformed` for a
/// payload inconsistent with its kind, `NotAWireKind` for storage-tier
/// records, `BadControl` for unknown control codes.
pub fn decode_message(record: &[u8], dim: usize) -> Result<Message, WireError> {
    let (kind, round, base, payload) = check_record(record)?;
    match kind {
        RecordKind::Register => {
            if payload.len() != 8 {
                return Err(WireError::Malformed("register payload"));
            }
            let weight = f32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
            let dim = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
            Ok(Message::Register {
                client: base,
                weight,
                dim,
            })
        }
        RecordKind::RoundModel => Ok(Message::RoundModel {
            round,
            params: f32s_from(payload, "round-model payload")?,
        }),
        RecordKind::SignUpload => {
            if payload.len() != dim.div_ceil(4) {
                return Err(WireError::Malformed("sign upload length"));
            }
            let dir = GradientDirection::from_packed(dim, payload.to_vec())
                .ok_or(WireError::Malformed("sign upload packing"))?;
            Ok(Message::SignUpload {
                round,
                client: base,
                dir,
            })
        }
        RecordKind::GradUpload => Ok(Message::GradUpload {
            round,
            client: base,
            grad: f32s_from(payload, "grad upload payload")?,
        }),
        RecordKind::ForgetRequest => {
            if payload.len() % 8 != 0 {
                return Err(WireError::Malformed("forget request payload"));
            }
            let clients = payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as ClientId)
                .collect();
            Ok(Message::ForgetRequest {
                from: base,
                clients,
            })
        }
        RecordKind::Control => {
            let code =
                ControlCode::from_code(round as u64).ok_or(WireError::BadControl(round as u64))?;
            Ok(Message::Control {
                code,
                arg: base as u64,
            })
        }
        other => Err(WireError::NotAWireKind(other.code())),
    }
}

/// Reads one whole frame into `buf` (cleared first). Returns `Ok(false)`
/// on a clean close (EOF exactly at a frame boundary); EOF anywhere
/// inside a frame is the storage tier's typed
/// [`SegmentDecodeError::Truncated`] — a torn frame.
///
/// # Errors
///
/// `Frame(Truncated)` for torn frames, `Oversize` for a declared payload
/// beyond [`MAX_PAYLOAD`], `TimedOut` when a socket read deadline (set
/// via `set_read_timeout`) elapses, `Io` for other socket failures.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, WireError> {
    read_frame_idle(r, buf, || false)
}

/// Like [`read_frame`], but a socket read timeout consults `keep_waiting`
/// instead of failing immediately: `true` retries the read in place (a
/// partially received frame keeps its bytes), `false` aborts with
/// [`WireError::TimedOut`]. This is the server-side shutdown poll:
/// handler threads read with a short socket timeout and bail out the
/// moment the serve loop raises its done flag, so wind-down can never
/// hang on a peer that is itself blocked reading — even one that
/// connected after the final Done sweep.
pub fn read_frame_idle<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
    mut keep_waiting: impl FnMut() -> bool,
) -> Result<bool, WireError> {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut buf[filled..HEADER_LEN]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(WireError::Frame(SegmentDecodeError::Truncated)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if keep_waiting() {
                    continue;
                }
                return Err(WireError::TimedOut);
            }
            Err(e) => return Err(e.into()),
        }
    }
    let total = framed_len(buf).ok_or(WireError::Frame(SegmentDecodeError::Truncated))?;
    if total - HEADER_LEN - TRAILER_LEN > MAX_PAYLOAD {
        return Err(WireError::Oversize(total - HEADER_LEN - TRAILER_LEN));
    }
    buf.resize(total, 0);
    while filled < total {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Frame(SegmentDecodeError::Truncated)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if keep_waiting() {
                    continue;
                }
                return Err(WireError::TimedOut);
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// A read timeout surfaces as `WouldBlock` on Unix sockets and
/// `TimedOut` on some platforms' TCP stacks; treat both as the deadline.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_round_trips() {
        let rec = encode_register(7, 20.5, 52_138);
        assert_eq!(
            decode_message(&rec, 0).unwrap(),
            Message::Register {
                client: 7,
                weight: 20.5,
                dim: 52_138
            }
        );
    }

    #[test]
    fn round_model_payload_is_pure_f32_bytes() {
        let params = vec![1.0f32, -2.5, f32::MIN_POSITIVE, 0.0];
        let rec = encode_round_model(3, &params);
        assert_eq!(rec.len(), HEADER_LEN + params.len() * 4 + TRAILER_LEN);
        match decode_message(&rec, params.len()).unwrap() {
            Message::RoundModel { round, params: p } => {
                assert_eq!(round, 3);
                let bits: Vec<u32> = p.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = params.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits, want);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn sign_upload_payload_is_exactly_packed_width() {
        let grad = vec![0.5f32, -0.5, 0.0, 0.5, -0.5];
        let dir = GradientDirection::quantize(&grad, 0.1);
        let mut rec = Vec::new();
        encode_sign_upload_into(&mut rec, 9, 4, &dir);
        assert_eq!(rec.len(), HEADER_LEN + 5usize.div_ceil(4) + TRAILER_LEN);
        match decode_message(&rec, 5).unwrap() {
            Message::SignUpload {
                round,
                client,
                dir: d,
            } => {
                assert_eq!((round, client), (9, 4));
                assert_eq!(d, dir);
            }
            other => panic!("wrong message: {other:?}"),
        }
        // The registered dimension gates the decode: a mismatched dim is
        // a typed Malformed, not a silent mis-widthed direction.
        assert_eq!(
            decode_message(&rec, 50),
            Err(WireError::Malformed("sign upload length"))
        );
    }

    #[test]
    fn grad_upload_and_forget_round_trip() {
        let mut rec = Vec::new();
        let mut scratch = Vec::new();
        encode_grad_upload_into(&mut rec, &mut scratch, 2, 11, &[1.0, -1.0]);
        assert_eq!(
            decode_message(&rec, 2).unwrap(),
            Message::GradUpload {
                round: 2,
                client: 11,
                grad: vec![1.0, -1.0]
            }
        );
        let rec = encode_forget_request(3, &[5, 9]);
        assert_eq!(
            decode_message(&rec, 0).unwrap(),
            Message::ForgetRequest {
                from: 3,
                clients: vec![5, 9]
            }
        );
    }

    #[test]
    fn control_codes_round_trip_and_unknown_is_typed() {
        for code in [
            ControlCode::Done,
            ControlCode::RegisterAck,
            ControlCode::Skip,
        ] {
            let rec = encode_control(code, 42);
            assert_eq!(
                decode_message(&rec, 0).unwrap(),
                Message::Control { code, arg: 42 }
            );
        }
        let rec = encode_record(RecordKind::Control, 99, 0, &[]);
        assert_eq!(decode_message(&rec, 0), Err(WireError::BadControl(99)));
    }

    #[test]
    fn storage_kinds_are_not_wire_messages() {
        let rec = fuiov_storage::segment::encode_keyframe(0, &[1.0]);
        assert_eq!(decode_message(&rec, 1), Err(WireError::NotAWireKind(1)));
    }

    #[test]
    fn read_frame_distinguishes_clean_close_from_torn() {
        let rec = encode_register(1, 1.0, 4);
        let mut buf = Vec::new();

        // Whole frame, then EOF: one frame, then a clean close.
        let mut r = std::io::Cursor::new(rec.clone());
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, rec);
        assert!(!read_frame(&mut r, &mut buf).unwrap());

        // EOF inside the frame: torn, at every cut.
        for cut in 1..rec.len() {
            let mut r = std::io::Cursor::new(rec[..cut].to_vec());
            assert_eq!(
                read_frame(&mut r, &mut buf),
                Err(WireError::Frame(SegmentDecodeError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversize_header_is_rejected_before_allocation() {
        let rec = encode_register(1, 1.0, 4);
        let mut huge = rec[..HEADER_LEN].to_vec();
        huge[HEADER_LEN - 4..].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = std::io::Cursor::new(huge);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(WireError::Oversize(_))
        ));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(WireError::Frame(SegmentDecodeError::Truncated)
            .to_string()
            .contains("truncated"));
        assert!(WireError::Oversize(9).to_string().contains("oversize"));
        assert!(WireError::Malformed("x").to_string().contains("malformed"));
        assert!(WireError::NotAWireKind(1).to_string().contains("kind"));
        assert!(WireError::BadControl(9).to_string().contains("control"));
        assert!(WireError::Io("x".into()).to_string().contains("i/o"));
    }
}
