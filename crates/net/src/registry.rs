//! The vehicle registry: who has announced, with what weight and
//! dimension.
//!
//! Vehicles open a connection and send one [`Register`] frame before
//! anything else; the registry is the server's authoritative map from
//! client id to FedAvg weight and declared model dimension. Iteration is
//! sorted by client id — the *flat client order* every aggregation in
//! this codebase folds in — so round outcomes don't depend on who
//! happened to register (or upload) first.
//!
//! [`Register`]: crate::wire::Message::Register

use fuiov_storage::ClientId;
use std::collections::BTreeMap;

/// One announced vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Registration {
    /// The vehicle's stable id.
    pub client: ClientId,
    /// Its FedAvg weight `‖Dᵢ‖`.
    pub weight: f32,
    /// The model dimension it trains.
    pub dim: usize,
}

/// Sorted registry of announced vehicles.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    entries: BTreeMap<ClientId, Registration>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records an announcement. Re-registration (a vehicle reconnecting
    /// after a drop) is idempotent: the entry is replaced and `false`
    /// returned; a first-time announcement returns `true`.
    pub fn register(&mut self, reg: Registration) -> bool {
        self.entries.insert(reg.client, reg).is_none()
    }

    /// Looks up one vehicle.
    pub fn get(&self, client: ClientId) -> Option<&Registration> {
        self.entries.get(&client)
    }

    /// Number of announced vehicles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nobody has announced yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All registrations in flat client order.
    pub fn iter(&self) -> impl Iterator<Item = &Registration> {
        self.entries.values()
    }

    /// The common model dimension, or `None` when empty or vehicles
    /// disagree (a protocol error the server surfaces before training).
    pub fn common_dim(&self) -> Option<usize> {
        let mut dims = self.entries.values().map(|r| r.dim);
        let first = dims.next()?;
        dims.all(|d| d == first).then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_sorted() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        assert!(reg.register(Registration {
            client: 3,
            weight: 10.0,
            dim: 4
        }));
        assert!(reg.register(Registration {
            client: 1,
            weight: 20.0,
            dim: 4
        }));
        assert!(!reg.register(Registration {
            client: 3,
            weight: 12.0,
            dim: 4
        }));
        assert_eq!(reg.len(), 2);
        let order: Vec<ClientId> = reg.iter().map(|r| r.client).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(reg.get(3).unwrap().weight, 12.0);
    }

    #[test]
    fn common_dim_flags_disagreement() {
        let mut reg = Registry::new();
        assert_eq!(reg.common_dim(), None);
        reg.register(Registration {
            client: 0,
            weight: 1.0,
            dim: 8,
        });
        assert_eq!(reg.common_dim(), Some(8));
        reg.register(Registration {
            client: 1,
            weight: 1.0,
            dim: 9,
        });
        assert_eq!(reg.common_dim(), None);
    }
}
