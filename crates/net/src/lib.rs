//! Networked FL plane for the IoV federated-unlearning stack.
//!
//! Moves the §III-A round loop onto real sockets — TCP or Unix-domain —
//! without forking any round arithmetic: the wire is a *transport seam*
//! in front of [`fuiov_fl::Server`], which still owns aggregation, the
//! Eq. 2 step, history recording, and byte accounting.
//!
//! The protocol is the storage tier's own FUSG framing
//! ([`fuiov_storage::segment`]) promoted to the wire: every message is a
//! sealed record (word-wise FNV-1a trailer), so torn frames and bit rot
//! arrive as the same typed errors the segment codec already has, and the
//! round-pipeline payloads are byte-for-byte the quantities
//! [`fuiov_fl::comms`] accounts — a model broadcast is exactly `4·d`
//! payload bytes, a 2-bit sign upload exactly `⌈d/4⌉`.
//!
//! Determinism is restored at one boundary (see [`server`]): uploads are
//! buffered per round and reduced in flat client order, so a networked
//! round is bitwise identical to the in-process loop for the same
//! participation set.
//!
//! # Example
//!
//! ```
//! use fuiov_net::{NetAddr, NetConfig, NetServer, NetVehicle, VehicleConfig};
//! use fuiov_fl::{Client, FlConfig, HonestClient, Server};
//! use fuiov_data::{Dataset, DigitStyle};
//! use fuiov_nn::ModelSpec;
//!
//! let spec = ModelSpec::Mlp { inputs: 144, hidden: 4, classes: 10 };
//! let dim = spec.build(0).params().len();
//! let mut net = NetServer::bind(NetConfig::new(
//!     NetAddr::parse("tcp:127.0.0.1:0"),
//!     2,
//! ))
//! .unwrap();
//! let addr = net.local_addr().clone();
//! let vehicles: Vec<_> = (0..2)
//!     .map(|id| {
//!         let addr = addr.clone();
//!         std::thread::spawn(move || {
//!             let data = Dataset::digits(20, &DigitStyle::small(), id as u64);
//!             let spec = ModelSpec::Mlp { inputs: 144, hidden: 4, classes: 10 };
//!             let dim = spec.build(0).params().len();
//!             let client = Box::new(HonestClient::new(id, spec, data, 10, 1));
//!             NetVehicle::new(VehicleConfig::new(addr, 7), client, dim)
//!                 .run()
//!                 .unwrap()
//!         })
//!     })
//!     .collect();
//! let mut fl = Server::new(FlConfig::new(2, 0.1), spec.build(0).params());
//! let report = net.serve(&mut fl, 2).unwrap();
//! assert_eq!(fl.round(), 2);
//! assert_eq!(report.rx_payload, 2 * 2 * 4 * dim as u64);
//! for v in vehicles {
//!     v.join().unwrap();
//! }
//! ```

pub mod registry;
pub mod server;
pub mod transport;
pub mod vehicle;
pub mod wire;

pub use registry::{Registration, Registry};
pub use server::{NetConfig, NetError, NetRunReport, NetServer, UploadMode};
pub use transport::{Conn, Listener, NetAddr};
pub use vehicle::{NetVehicle, RetryPolicy, VehicleConfig, VehicleReport};
pub use wire::{ControlCode, Message, WireError};
