//! Bitwise regression pins for the replay engine: the recovered model of a
//! deterministic synthetic run must not move, bit for bit, across refactors
//! of the recovery hot loop (per-client → batched engine).
//!
//! Run with `FUIOV_PIN_PRINT=1 cargo test -p fuiov-core --test replay_pinned
//! -- --nocapture` to print the bits for re-pinning after an *intentional*
//! numeric change.

use fuiov_core::{recover, NoOracle, RecoveryConfig};
use fuiov_storage::{ClientId, HistoryStore};
use fuiov_tensor::vector;

/// The synthetic linear-optimisation history used by the recover unit
/// tests: clients pull the model toward distinct targets.
fn synthetic_history(rounds: usize, clients: usize, forgotten: ClientId) -> HistoryStore {
    let dim = 6;
    let lr = 0.05f32;
    let mut h = HistoryStore::new(1e-6);
    let mut w = vec![0.0f32; dim];
    for c in 0..clients {
        h.record_join(c, if c == forgotten { 2 } else { 0 });
        h.set_weight(c, 10.0);
    }
    for t in 0..rounds {
        h.record_model(t, w.clone());
        let mut grads = Vec::new();
        for c in 0..clients {
            if c == forgotten && t < 2 {
                continue;
            }
            let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32 - 1.0).collect();
            let g = vector::sub(&w, &target);
            h.record_gradient(t, c, &g);
            grads.push(g);
        }
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let weights = vec![10.0f32; refs.len()];
        let agg = vector::weighted_mean(&refs, &weights);
        vector::axpy(-lr, &agg, &mut w);
    }
    h.record_model(rounds, w);
    h
}

fn run_bits(cfg: &RecoveryConfig) -> Vec<u32> {
    let h = synthetic_history(30, 6, 1);
    let out = recover(&h, 1, cfg, &mut NoOracle, |_, _| {}).unwrap();
    // Pin the recovered params AND every per-round update norm: the norms
    // differ between configs even when the trajectories reconverge, so a
    // refactor that changes any intermediate round is caught.
    out.params
        .iter()
        .chain(out.update_norms.iter())
        .map(|v| v.to_bits())
        .collect()
}

fn check(label: &str, cfg: &RecoveryConfig, expected: &[u32]) {
    let got = run_bits(cfg);
    if std::env::var("FUIOV_PIN_PRINT").is_ok() {
        println!("PIN {label}: {got:?}");
        return;
    }
    assert_eq!(got, expected, "replay bits moved for config `{label}`");
}

#[test]
fn pinned_default_refresh5() {
    // lr off the training rate so replay does not trivially reconverge.
    let cfg = RecoveryConfig::new(0.07)
        .pair_refresh_interval(5)
        .clip_threshold(0.8);
    check("refresh5", &cfg, &EXPECT_REFRESH5);
}

#[test]
fn pinned_divergence_patience() {
    let cfg = RecoveryConfig::new(0.07)
        .pair_refresh_interval(7)
        .clip_threshold(0.8)
        .divergence_patience(Some(1));
    check("patience", &cfg, &EXPECT_PATIENCE);
}

#[test]
fn pinned_no_hessian() {
    let cfg = RecoveryConfig::new(0.07)
        .pair_refresh_interval(5)
        .clip_threshold(0.8)
        .without_hessian();
    check("no_hessian", &cfg, &EXPECT_NO_HESSIAN);
}

const EXPECT_REFRESH5: [u32; 34] = [
    0, 1048406049, 3195889697, 0, 1048406049, 3195889697, 1050924810, 1050924810, 1050924810,
    1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050621196,
    1050325783, 1050038371, 1049758763, 1049486765, 1049222186, 1048964840, 1048714548, 1048366253,
    1047892810, 1047432419, 1046984746, 1046549462, 1046126250, 1045714794, 1045314789, 1044925938,
    1044547939,
];
const EXPECT_PATIENCE: [u32; 34] = [
    0, 1035973085, 3183456733, 0, 1035973085, 3183456733, 1050924810, 1050924810, 1050924810,
    1049573376, 1048225558, 1046189754, 1044421627, 1042885134, 1041549133, 1040386704, 1038561782,
    1036797952, 1035259763, 1033917146, 1032744128, 1031637690, 1029841248, 1028266534, 1026884435,
    1025669760, 1024600730, 1023658438, 1022242957, 1020771661, 1019468288, 1018311552, 1017282995,
    1016366592,
];
const EXPECT_NO_HESSIAN: [u32; 34] = [
    0, 1050055749, 3197539397, 0, 1050055749, 3197539397, 1050924810, 1050924810, 1050924810,
    1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810,
    1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810,
    1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810, 1050924810,
    1050924810,
];
