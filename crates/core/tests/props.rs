//! Property-based robustness tests: recovery must behave sanely on
//! arbitrary (even adversarial) histories — no panics on valid inputs, no
//! NaNs out, clip bounds respected.

use fuiov_core::{
    backtrack_set, recover_set, LbfgsApprox, NoOracle, RecoveryConfig, RoundScratch, StackedLbfgs,
};
use fuiov_storage::{ClientId, HistoryStore};
use proptest::prelude::*;

/// Builds a random but *valid* history: `rounds+1` models of dimension
/// `dim`, every client joins at a random round and reports gradients from
/// then on.
fn arb_history(
    dim: usize,
    rounds: usize,
    clients: usize,
) -> impl Strategy<Value = (HistoryStore, Vec<usize>)> {
    let models = prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), rounds + 1);
    let joins = prop::collection::vec(0usize..rounds, clients);
    let grads = prop::collection::vec(
        prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), rounds),
        clients,
    );
    (models, joins, grads).prop_map(move |(models, joins, grads)| {
        let mut h = HistoryStore::new(1e-3);
        for (t, m) in models.into_iter().enumerate() {
            h.record_model(t, m);
        }
        for (c, &join) in joins.iter().enumerate() {
            h.record_join(c, join);
            for (t, g) in grads[c].iter().enumerate().take(rounds).skip(join) {
                h.record_gradient(t, c, g);
            }
        }
        (h, joins)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recovery on any valid random history terminates with finite
    /// parameters, correct round accounting, and (with tiny L) bounded
    /// per-round updates.
    #[test]
    fn recovery_is_total_and_finite((h, joins) in arb_history(6, 8, 3)) {
        let forgotten = 0usize;
        let cfg = RecoveryConfig::new(0.05);
        match recover_set(&h, &[forgotten], &cfg, &mut NoOracle, |_, _| {}) {
            Ok(out) => {
                prop_assert!(out.params.iter().all(|v| v.is_finite()));
                prop_assert_eq!(out.start_round, joins[0]);
                prop_assert_eq!(out.rounds_replayed, 8 - joins[0]);
                prop_assert_eq!(out.update_norms.len(), out.rounds_replayed);
            }
            // Joining at the last recorded round means nothing to recover.
            Err(fuiov_core::UnlearnError::NothingToRecover { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// With clip threshold L, every aggregated update norm is at most
    /// √dim · L (element-wise bound through FedAvg).
    #[test]
    fn clip_bound_holds_on_random_histories((h, _) in arb_history(5, 6, 3), l in 0.01f32..0.5) {
        let cfg = RecoveryConfig::new(1.0).clip_threshold(l);
        if let Ok(out) = recover_set(&h, &[1], &cfg, &mut NoOracle, |_, _| {}) {
            let bound = (5.0f32).sqrt() * l + 1e-5;
            for n in out.update_norms {
                prop_assert!(n <= bound, "norm {n} exceeds bound {bound}");
            }
        }
    }

    /// Backtracking a set equals the minimum of individual backtracks,
    /// and its params match the stored model at that round.
    #[test]
    fn set_backtrack_is_min_of_singletons((h, joins) in arb_history(4, 6, 3)) {
        let bt_all = backtrack_set(&h, &[0, 1, 2]).unwrap();
        let min_join = *joins.iter().min().unwrap();
        prop_assert_eq!(bt_all.join_round, min_join);
        prop_assert_eq!(&bt_all.params[..], &*h.model(min_join).unwrap());
    }

    /// Recovery is deterministic: same history, same config, same output.
    #[test]
    fn recovery_is_deterministic((h, _) in arb_history(5, 7, 3)) {
        let cfg = RecoveryConfig::new(0.02);
        let a = recover_set(&h, &[2], &cfg, &mut NoOracle, |_, _| {});
        let b = recover_set(&h, &[2], &cfg, &mut NoOracle, |_, _| {});
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.params, y.params),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "determinism violated in error path"),
        }
    }

    /// The batched recovery engine's stacked HVP is bit-for-bit the
    /// per-client [`LbfgsApprox::hvp`] for every stacked client, across
    /// random client counts, pair counts, and dimensions — the invariant
    /// that lets `recover_set` swap one for the other without moving the
    /// golden trace.
    #[test]
    fn stacked_hvp_is_bitwise_per_client_hvp(
        dim in 3usize..48,
        pair_counts in prop::collection::vec(1usize..=3, 1..=6),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        // Pairs with dg a positive per-coordinate scaling of dw are always
        // well-conditioned; clients whose factorisation still fails are
        // simply left unstacked (mirroring recover_set's fallback).
        let approxes: Vec<(ClientId, LbfgsApprox)> = pair_counts
            .iter()
            .enumerate()
            .filter_map(|(c, &s)| {
                let dws: Vec<Vec<f32>> =
                    (0..s).map(|_| (0..dim).map(|_| next()).collect()).collect();
                let dgs: Vec<Vec<f32>> = dws
                    .iter()
                    .map(|w| {
                        w.iter()
                            .enumerate()
                            .map(|(i, x)| x * (1.0 + (i % 4) as f32 * 0.5))
                            .collect()
                    })
                    .collect();
                LbfgsApprox::new(&dws, &dgs).ok().map(|a| (c, a))
            })
            .collect();
        prop_assume!(!approxes.is_empty());
        // Shared round vector with exact zeros planted (the zero-skip in
        // the inbound pass must agree between the two paths).
        let v: Vec<f32> =
            (0..dim).map(|i| if i % 7 == 0 { 0.0 } else { next() }).collect();

        let stacked = StackedLbfgs::build(dim, approxes.iter().map(|(c, a)| (*c, a)));
        let mut scratch = RoundScratch::new();
        stacked.fused_dots(&v, &mut scratch.dots);
        stacked.solve_middles(&scratch.dots, &mut scratch.ps, &mut scratch.rhs, &mut scratch.p);
        let mut batched = vec![0.0f32; dim];
        for (client, approx) in &approxes {
            let entry = stacked.entry_for(*client).expect("client was stacked");
            stacked.write_hvp(entry, &scratch.ps, &v, &mut batched);
            let per_client = approx.hvp(&v);
            prop_assert_eq!(
                batched.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
                per_client.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
                "client {} diverged from per-client hvp", client
            );
        }
    }

    /// Disabling the Hessian keeps estimates inside the clip box exactly:
    /// raw directions are ±1, so with L ≥ 1 the replay is untouched and
    /// the update equals the weighted mean of stored directions.
    #[test]
    fn sign_replay_update_norm_is_bounded_by_dim((h, _) in arb_history(4, 5, 2)) {
        let cfg = RecoveryConfig::new(0.1).without_hessian();
        if let Ok(out) = recover_set(&h, &[0], &cfg, &mut NoOracle, |_, _| {}) {
            // Elements of the aggregate are means of {−1,0,1} → |·| ≤ 1.
            let bound = 2.0f32 + 1e-5; // √4 · 1
            for n in out.update_norms {
                prop_assert!(n <= bound);
            }
        }
    }
}
