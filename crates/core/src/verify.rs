//! Verifying that unlearning actually forgot (§III-B).
//!
//! The paper's correctness criterion: after unlearning client `i`, the
//! model should behave like one trained only on `C \ {i}`. This module
//! provides the standard empirical probes used in the unlearning
//! literature:
//!
//! - [`forgetting_score`]: how much worse the model got *specifically* on
//!   the forgotten client's data, relative to a reference set — positive
//!   scores mean the client's data lost its privileged (memorised)
//!   status;
//! - [`membership_advantage`]: a loss-threshold membership-inference
//!   probe — after successful unlearning the attacker's advantage in
//!   telling the forgotten data apart from unseen data should shrink
//!   toward zero.

use fuiov_data::Dataset;
use fuiov_nn::Sequential;

/// Mean per-sample loss of `params` on a dataset.
fn mean_loss(model: &mut Sequential, params: &[f32], data: &Dataset) -> f32 {
    model.set_params(params);
    let mut total = 0.0f64;
    let all: Vec<usize> = (0..data.len()).collect();
    for chunk in all.chunks(256) {
        let (x, y) = data.gather(chunk);
        let (loss, _) = model.loss_and_grad(&x, &y);
        total += f64::from(loss) * chunk.len() as f64;
    }
    (total / data.len().max(1) as f64) as f32
}

/// The forgetting score of an unlearning operation:
///
/// ```text
/// score = [L_after(forgotten) − L_before(forgotten)]
///       − [L_after(reference) − L_before(reference)]
/// ```
///
/// i.e. the loss increase on the forgotten client's data *beyond* the
/// general loss drift measured on a reference (held-out) set. A score
/// near zero means the forgotten data was never memorised or was not
/// forgotten; clearly positive scores indicate its privileged fit was
/// removed.
///
/// # Panics
///
/// Panics if either dataset is empty or parameter dimensions mismatch the
/// model.
pub fn forgetting_score(
    model: &mut Sequential,
    params_before: &[f32],
    params_after: &[f32],
    forgotten_data: &Dataset,
    reference_data: &Dataset,
) -> f32 {
    assert!(
        !forgotten_data.is_empty(),
        "forgetting_score: empty forgotten set"
    );
    assert!(
        !reference_data.is_empty(),
        "forgetting_score: empty reference set"
    );
    let fb = mean_loss(model, params_before, forgotten_data);
    let fa = mean_loss(model, params_after, forgotten_data);
    let rb = mean_loss(model, params_before, reference_data);
    let ra = mean_loss(model, params_after, reference_data);
    (fa - fb) - (ra - rb)
}

/// A simple loss-threshold membership-inference probe.
///
/// The attacker guesses "member" when a sample's loss is below the median
/// loss of the pooled (member ∪ non-member) data. Returns the attacker's
/// advantage `2·(accuracy − ½) ∈ [−1, 1]`; `0` means the forgotten data
/// is indistinguishable from unseen data — the unlearning goal.
///
/// # Panics
///
/// Panics if either dataset is empty.
pub fn membership_advantage(
    model: &mut Sequential,
    params: &[f32],
    member_data: &Dataset,
    nonmember_data: &Dataset,
) -> f32 {
    assert!(
        !member_data.is_empty(),
        "membership_advantage: empty member set"
    );
    assert!(
        !nonmember_data.is_empty(),
        "membership_advantage: empty non-member set"
    );
    model.set_params(params);

    let per_sample = |model: &mut Sequential, data: &Dataset| -> Vec<f32> {
        (0..data.len())
            .map(|i| {
                let (x, y) = data.gather(&[i]);
                let (loss, _) = model.loss_and_grad(&x, &y);
                loss
            })
            .collect()
    };
    let member_losses = per_sample(model, member_data);
    let nonmember_losses = per_sample(model, nonmember_data);

    let mut pooled: Vec<f32> = member_losses
        .iter()
        .chain(&nonmember_losses)
        .copied()
        .collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = pooled[pooled.len() / 2];

    let correct_members = member_losses.iter().filter(|&&l| l < threshold).count();
    let correct_nonmembers = nonmember_losses.iter().filter(|&&l| l >= threshold).count();
    let accuracy = (correct_members + correct_nonmembers) as f32
        / (member_losses.len() + nonmember_losses.len()) as f32;
    2.0 * (accuracy - 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;
    use fuiov_nn::{ModelSpec, Tensor4};
    use fuiov_tensor::vector;

    const SPEC: ModelSpec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 24,
        classes: 10,
    };

    /// Overfit a model to `data` starting from `params`.
    fn overfit(params: &[f32], data: &Dataset, steps: usize) -> Vec<f32> {
        let mut m = SPEC.build(0);
        let mut p = params.to_vec();
        let (x, y): (Tensor4, Vec<usize>) = data.full();
        for _ in 0..steps {
            m.set_params(&p);
            let (_, g) = m.loss_and_grad(&x, &y);
            vector::axpy(-0.5, &g, &mut p);
        }
        p
    }

    #[test]
    fn forgetting_score_detects_memorisation_removal() {
        let forgotten = Dataset::digits(30, &DigitStyle::small(), 1);
        let reference = Dataset::digits(30, &DigitStyle::small(), 2);
        let init = SPEC.build(7).params();
        // "Before" model memorised the forgotten data; "after" model never
        // saw it (trained only on other data).
        let other = Dataset::digits(30, &DigitStyle::small(), 3);
        let before = overfit(&init, &forgotten, 60);
        let after = overfit(&init, &other, 60);
        let mut m = SPEC.build(0);
        let score = forgetting_score(&mut m, &before, &after, &forgotten, &reference);
        assert!(
            score > 0.3,
            "memorisation removal should show: score {score}"
        );
    }

    #[test]
    fn forgetting_score_near_zero_when_nothing_changes() {
        let forgotten = Dataset::digits(20, &DigitStyle::small(), 4);
        let reference = Dataset::digits(20, &DigitStyle::small(), 5);
        let params = SPEC.build(9).params();
        let mut m = SPEC.build(0);
        let score = forgetting_score(&mut m, &params, &params, &forgotten, &reference);
        assert!(score.abs() < 1e-6);
    }

    #[test]
    fn membership_advantage_high_for_overfit_model() {
        let members = Dataset::digits(25, &DigitStyle::small(), 6);
        let nonmembers = Dataset::digits(25, &DigitStyle::small(), 7);
        let init = SPEC.build(11).params();
        let overfitted = overfit(&init, &members, 80);
        let mut m = SPEC.build(0);
        let adv_overfit = membership_advantage(&mut m, &overfitted, &members, &nonmembers);
        let adv_fresh = membership_advantage(&mut m, &init, &members, &nonmembers);
        assert!(
            adv_overfit > adv_fresh + 0.2,
            "overfitting should leak membership: fresh {adv_fresh} vs overfit {adv_overfit}"
        );
    }

    #[test]
    #[should_panic(expected = "empty forgotten set")]
    fn rejects_empty_sets() {
        let d = Dataset::digits(10, &DigitStyle::small(), 1);
        let empty = d.subset(&[]);
        let params = SPEC.build(0).params();
        let mut m = SPEC.build(0);
        let _ = forgetting_score(&mut m, &params, &params, &empty, &d);
    }
}
