//! Error type for the unlearning pipeline.

use fuiov_storage::{ClientId, Round};
use std::error::Error;
use std::fmt;

/// Why an unlearning/recovery request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnlearnError {
    /// The client to forget never participated in training.
    UnknownClient(ClientId),
    /// The history is missing the global model for a needed round.
    MissingModel(Round),
    /// The history contains no rounds after the forget point — nothing to
    /// recover.
    NothingToRecover {
        /// The client's join round `F`.
        join_round: Round,
        /// Latest recorded round `T`.
        latest_round: Round,
    },
    /// No remaining (non-forgotten) client submitted a gradient anywhere
    /// in the replay window `F..T` — every other vehicle had already left
    /// the federation, so there is no information to recover from and
    /// replay would silently return the backtracked model as if it had
    /// been recovered.
    EmptyMembershipWindow {
        /// The backtrack point `F`.
        start_round: Round,
        /// The final round `T`.
        end_round: Round,
    },
    /// The history store is empty.
    EmptyHistory,
    /// A job checkpoint payload failed to parse (framing was FNV-clean but
    /// the state inside is not a valid replay snapshot — e.g. produced by
    /// an incompatible version).
    BadJobCheckpoint(&'static str),
    /// The L-BFGS stack rebuilt from a job checkpoint does not match the
    /// fingerprint sealed at checkpoint time, so a resumed replay could
    /// silently diverge from the uninterrupted run. The job restarts from
    /// an earlier checkpoint (or from scratch) instead.
    StackFingerprintMismatch {
        /// Fingerprint sealed in the checkpoint.
        expected: u64,
        /// Fingerprint of the stack rebuilt on resume.
        found: u64,
    },
}

impl fmt::Display for UnlearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnlearnError::UnknownClient(c) => {
                write!(f, "client {c} never participated in training")
            }
            UnlearnError::MissingModel(r) => {
                write!(f, "history is missing the global model for round {r}")
            }
            UnlearnError::NothingToRecover { join_round, latest_round } => write!(
                f,
                "no rounds to recover: client joined at round {join_round}, history ends at round {latest_round}"
            ),
            UnlearnError::EmptyMembershipWindow { start_round, end_round } => write!(
                f,
                "no remaining client participated in rounds {start_round}..{end_round}: nothing to replay"
            ),
            UnlearnError::EmptyHistory => write!(f, "history store is empty"),
            UnlearnError::BadJobCheckpoint(what) => {
                write!(f, "job checkpoint payload is not a valid replay snapshot: {what}")
            }
            UnlearnError::StackFingerprintMismatch { expected, found } => write!(
                f,
                "L-BFGS stack rebuilt on resume has fingerprint {found:#018x}, checkpoint sealed {expected:#018x}"
            ),
        }
    }
}

impl Error for UnlearnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(UnlearnError::UnknownClient(3)
            .to_string()
            .contains("client 3"));
        assert!(UnlearnError::MissingModel(7)
            .to_string()
            .contains("round 7"));
        assert!(UnlearnError::EmptyHistory.to_string().contains("empty"));
        let e = UnlearnError::NothingToRecover {
            join_round: 9,
            latest_round: 9,
        };
        assert!(e.to_string().contains("joined at round 9"));
        let e = UnlearnError::EmptyMembershipWindow {
            start_round: 3,
            end_round: 8,
        };
        assert!(e.to_string().contains("rounds 3..8"));
        let e = UnlearnError::BadJobCheckpoint("short params");
        assert!(e.to_string().contains("short params"));
        let e = UnlearnError::StackFingerprintMismatch {
            expected: 0xabcd,
            found: 0x1234,
        };
        let s = e.to_string();
        assert!(s.contains("0x000000000000abcd") && s.contains("0x0000000000001234"));
    }
}
