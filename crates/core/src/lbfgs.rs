//! Compact L-BFGS Hessian approximation (the paper's Algorithm 2).
//!
//! Given `s` vector pairs — model differences `ΔW = [Δw₁ … Δwₛ]` and
//! gradient differences `ΔGⁱ = [Δg₁ … Δgₛ]` for client `i` — the compact
//! (Byrd–Nocedal–Schnabel) representation of the BFGS matrix with initial
//! scaling `σI` is
//!
//! ```text
//! B = σI − [ΔG  σΔW] · M⁻¹ · [ΔGᵀ; σΔWᵀ],
//! M = [ −D   Lᵀ
//!        L   σΔWᵀΔW ],
//! ```
//!
//! where `A = ΔWᵀΔG`, `L = tril(A)` (strictly lower), `D = diag(A)`, and
//! `σ = (Δgₛᵀ Δwₛ)/(Δwₛᵀ Δwₛ)` — exactly Algorithm 2's lines 1–6, with the
//! practical difference that the `d × d` matrix `B` is never materialised:
//! [`LbfgsApprox::hvp`] computes the Hessian-vector product `B·v` the
//! recovery loop needs (Eq. 6) using only `d × 2s` work.

use fuiov_tensor::solve::Lu;
use fuiov_tensor::{vector, Mat};
use std::error::Error;
use std::fmt;

/// Why an L-BFGS approximation could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum LbfgsError {
    /// No vector pairs were supplied.
    Empty,
    /// `ΔW`/`ΔG` counts or dimensions disagree.
    ShapeMismatch,
    /// The curvature `Δgₛᵀ Δwₛ` or `‖Δwₛ‖²` is non-positive / non-finite,
    /// so the BFGS scaling `σ` is undefined.
    BadCurvature {
        /// The offending σ numerator `Δgᵀ Δw`.
        sy: f32,
    },
    /// The `2s × 2s` middle matrix is singular (linearly dependent pairs).
    SingularMiddle,
}

impl fmt::Display for LbfgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbfgsError::Empty => write!(f, "no L-BFGS vector pairs supplied"),
            LbfgsError::ShapeMismatch => write!(f, "vector pair shapes disagree"),
            LbfgsError::BadCurvature { sy } => {
                write!(f, "non-positive curvature (Δgᵀ·Δw = {sy}); BFGS scaling undefined")
            }
            LbfgsError::SingularMiddle => write!(f, "singular L-BFGS middle matrix"),
        }
    }
}

impl Error for LbfgsError {}

/// A ready-to-apply compact L-BFGS Hessian approximation.
#[derive(Debug, Clone)]
pub struct LbfgsApprox {
    /// `d × s` model differences.
    dw: Mat,
    /// `d × s` gradient differences.
    dg: Mat,
    /// Factored `2s × 2s` middle matrix.
    middle: Lu,
    sigma: f32,
}

impl LbfgsApprox {
    /// Builds the approximation from parallel lists of vector pairs
    /// (ordered oldest → newest; the newest pair defines σ).
    ///
    /// # Errors
    ///
    /// Returns [`LbfgsError`] if the inputs are empty or inconsistent, the
    /// newest pair has non-positive curvature, or the middle matrix is
    /// singular.
    pub fn new(dws: &[Vec<f32>], dgs: &[Vec<f32>]) -> Result<Self, LbfgsError> {
        if dws.is_empty() || dgs.is_empty() {
            return Err(LbfgsError::Empty);
        }
        if dws.len() != dgs.len() {
            return Err(LbfgsError::ShapeMismatch);
        }
        let dim = dws[0].len();
        if dim == 0 || dws.iter().chain(dgs).any(|v| v.len() != dim) {
            return Err(LbfgsError::ShapeMismatch);
        }

        let last = dws.len() - 1;
        let sy = vector::dot(&dgs[last], &dws[last]);
        let ss = vector::dot(&dws[last], &dws[last]);
        if sy <= 0.0 || ss <= 0.0 || !sy.is_finite() || !ss.is_finite() {
            return Err(LbfgsError::BadCurvature { sy });
        }
        let sigma = sy / ss;

        let dw = Mat::from_cols(dws);
        let dg = Mat::from_cols(dgs);

        // A = ΔWᵀ ΔG; L = tril(A) strictly below diagonal; D = diag(A).
        let a = dw.tr_matmul(&dg);
        let l = a.tril_strict();
        let d = a.diag();

        // Middle matrix M = [ -D  Lᵀ ; L  σ·ΔWᵀΔW ].
        let mut neg_d = d;
        neg_d.scale_in_place(-1.0);
        let lt = l.transpose();
        let mut sww = dw.tr_matmul(&dw);
        sww.scale_in_place(sigma);
        let m = Mat::block2x2(&neg_d, &lt, &l, &sww);

        let middle = Lu::factor(&m).map_err(|_| LbfgsError::SingularMiddle)?;
        Ok(LbfgsApprox { dw, dg, middle, sigma })
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dw.rows()
    }

    /// Number of stored vector pairs `s`.
    pub fn pairs(&self) -> usize {
        self.dw.cols()
    }

    /// The initial-scaling coefficient σ.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Hessian-vector product `B·v` (Algorithm 2 applied to `v`; this is
    /// the `H̃ᵗᵢ·(w̄ₜ − wₜ)` term of Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn hvp(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim(), "hvp: dimension mismatch");
        let s = self.pairs();
        // rhs = [ΔGᵀ v ; σ ΔWᵀ v]
        let top = self.dg.tr_matvec(v);
        let mut bottom = self.dw.tr_matvec(v);
        vector::scale(self.sigma, &mut bottom);
        let mut rhs = Vec::with_capacity(2 * s);
        rhs.extend_from_slice(&top);
        rhs.extend_from_slice(&bottom);

        let p = self.middle.solve(&rhs);

        // out = σ v − ΔG·p[..s] − σ ΔW·p[s..]
        let mut out: Vec<f32> = v.to_vec();
        vector::scale(self.sigma, &mut out);
        let part_g = self.dg.matvec(&p[..s]);
        vector::axpy(-1.0, &part_g, &mut out);
        let part_w = self.dw.matvec(&p[s..]);
        vector::axpy(-self.sigma, &part_w, &mut out);
        out
    }

    /// Materialises the dense `d × d` approximation by applying
    /// [`LbfgsApprox::hvp`] to unit vectors — Algorithm 2 exactly as
    /// written. Only sensible for tiny models; used for cross-validation
    /// in tests and the `micro` ablation bench.
    pub fn dense(&self) -> Mat {
        let d = self.dim();
        let cols: Vec<Vec<f32>> = (0..d)
            .map(|j| {
                let mut e = vec![0.0; d];
                e[j] = 1.0;
                self.hvp(&e)
            })
            .collect();
        Mat::from_cols(&cols)
    }
}

/// A FIFO buffer of at most `s` vector pairs, as maintained per client
/// during recovery ("vector pairs are updated every … rounds", §V-A3).
#[derive(Debug, Clone, Default)]
pub struct PairBuffer {
    capacity: usize,
    dws: Vec<Vec<f32>>,
    dgs: Vec<Vec<f32>>,
}

impl PairBuffer {
    /// Creates a buffer holding at most `capacity` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PairBuffer: capacity must be positive");
        PairBuffer { capacity, dws: Vec::new(), dgs: Vec::new() }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.dws.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.dws.is_empty()
    }

    /// Pushes a pair, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if `dw`/`dg` lengths differ from each other or from stored
    /// pairs.
    pub fn push(&mut self, dw: Vec<f32>, dg: Vec<f32>) {
        assert_eq!(dw.len(), dg.len(), "PairBuffer::push: pair length mismatch");
        if let Some(first) = self.dws.first() {
            assert_eq!(first.len(), dw.len(), "PairBuffer::push: dimension changed");
        }
        if self.dws.len() == self.capacity {
            self.dws.remove(0);
            self.dgs.remove(0);
        }
        self.dws.push(dw);
        self.dgs.push(dg);
    }

    /// Builds the L-BFGS approximation from the buffered pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`LbfgsError`] from [`LbfgsApprox::new`] (including
    /// [`LbfgsError::Empty`] when the buffer has no pairs yet).
    pub fn approximation(&self) -> Result<LbfgsApprox, LbfgsError> {
        LbfgsApprox::new(&self.dws, &self.dgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds pairs from a known quadratic with Hessian Q: Δg = Q·Δw.
    fn quadratic_pairs(q: &Mat, dws: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let dgs: Vec<Vec<f32>> = dws.iter().map(|w| q.matvec(w)).collect();
        (dws.to_vec(), dgs)
    }

    #[test]
    fn isotropic_quadratic_is_recovered_exactly() {
        // Q = 3I: every direction has curvature 3, so B ≡ 3I.
        let q = {
            let mut m = Mat::eye(4);
            m.scale_in_place(3.0);
            m
        };
        let dws = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 1.0, 0.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        assert!((b.sigma() - 3.0).abs() < 1e-5);
        let v = vec![0.5, -1.0, 2.0, 0.25];
        let bv = b.hvp(&v);
        let qv = q.matvec(&v);
        assert!(vector::l2_distance(&bv, &qv) < 1e-4);
    }

    #[test]
    fn secant_equation_holds_for_newest_pair() {
        // Anisotropic quadratic.
        let q = Mat::from_rows(&[
            &[4.0, 1.0, 0.0],
            &[1.0, 3.0, 0.5],
            &[0.0, 0.5, 2.0],
        ]);
        let dws = vec![vec![1.0, 0.0, 0.0], vec![0.2, 1.0, -0.3]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let pred = b.hvp(&dws[1]);
        assert!(
            vector::l2_distance(&pred, &dgs[1]) < 1e-3,
            "secant violated: {pred:?} vs {:?}",
            dgs[1]
        );
    }

    #[test]
    fn dense_matches_hvp() {
        let q = Mat::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]);
        let dws = vec![vec![1.0, 0.2], vec![-0.1, 1.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let dense = b.dense();
        let v = vec![0.7, -0.4];
        let via_dense = dense.matvec(&v);
        let via_hvp = b.hvp(&v);
        assert!(vector::l2_distance(&via_dense, &via_hvp) < 1e-5);
        // Dense approximation of a 2-D quadratic with 2 independent pairs
        // should reproduce Q closely (f32 round-off leaves ~4e-3).
        assert!(dense.max_abs_diff(&q) < 1e-2, "dense={dense:?}");
    }

    #[test]
    fn hvp_is_linear() {
        let q = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let dws = vec![vec![1.0, 1.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let u = vec![1.0, -2.0];
        let v = vec![0.5, 3.0];
        let sum = vector::add(&u, &v);
        let lhs = b.hvp(&sum);
        let rhs = vector::add(&b.hvp(&u), &b.hvp(&v));
        assert!(vector::l2_distance(&lhs, &rhs) < 1e-4);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert_eq!(LbfgsApprox::new(&[], &[]).unwrap_err(), LbfgsError::Empty);
        assert_eq!(LbfgsApprox::new(&[vec![1.0]], &[]).unwrap_err(), LbfgsError::Empty);
        assert_eq!(
            LbfgsApprox::new(&[vec![1.0], vec![2.0]], &[vec![1.0]]).unwrap_err(),
            LbfgsError::ShapeMismatch
        );
        assert_eq!(
            LbfgsApprox::new(&[vec![1.0, 2.0]], &[vec![1.0]]).unwrap_err(),
            LbfgsError::ShapeMismatch
        );
    }

    #[test]
    fn rejects_negative_curvature() {
        // Δg anti-parallel to Δw → sy < 0.
        let err = LbfgsApprox::new(&[vec![1.0, 0.0]], &[vec![-1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, LbfgsError::BadCurvature { .. }));
        assert!(err.to_string().contains("curvature"));
    }

    #[test]
    fn duplicate_pairs_still_satisfy_secant() {
        // Identical pairs keep the middle matrix invertible thanks to the
        // −D block; the approximation must still satisfy the secant
        // equation. (True singularity — e.g. a zero Δw — surfaces as
        // BadCurvature or SingularMiddle and is handled by the recovery
        // loop's fallback.)
        let dw = vec![1.0, 2.0, 3.0];
        let dg = vec![2.0, 4.0, 6.0];
        let b = LbfgsApprox::new(&[dw.clone(), dw.clone()], &[dg.clone(), dg.clone()]).unwrap();
        let pred = b.hvp(&dw);
        assert!(vector::l2_distance(&pred, &dg) < 1e-3);
    }

    #[test]
    fn zero_pair_is_rejected() {
        let err = LbfgsApprox::new(&[vec![0.0, 0.0]], &[vec![0.0, 0.0]]).unwrap_err();
        assert!(matches!(err, LbfgsError::BadCurvature { .. }));
    }

    #[test]
    fn pair_buffer_fifo_eviction() {
        let mut buf = PairBuffer::new(2);
        assert!(buf.is_empty());
        buf.push(vec![1.0, 0.0], vec![2.0, 0.0]);
        buf.push(vec![0.0, 1.0], vec![0.0, 3.0]);
        buf.push(vec![1.0, 1.0], vec![2.0, 3.0]);
        assert_eq!(buf.len(), 2);
        // Oldest pair evicted: sigma now comes from the newest pair.
        let approx = buf.approximation().unwrap();
        let expected_sigma = vector::dot(&[2.0, 3.0], &[1.0, 1.0])
            / vector::dot(&[1.0, 1.0], &[1.0, 1.0]);
        assert!((approx.sigma() - expected_sigma).abs() < 1e-6);
    }

    #[test]
    fn pair_buffer_empty_approximation_errors() {
        let buf = PairBuffer::new(2);
        assert_eq!(buf.approximation().unwrap_err(), LbfgsError::Empty);
    }

    #[test]
    fn larger_random_quadratic_hvp_error_is_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let d = 12;
        // SPD matrix Q = R Rᵀ + I.
        let r_data: Vec<f32> = (0..d * d).map(|_| rng.gen_range(-0.4..0.4)).collect();
        let r = Mat::from_vec(d, d, r_data);
        let mut q = r.matmul(&r.transpose());
        for i in 0..d {
            q.set(i, i, q.get(i, i) + 1.0);
        }
        let dws: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        // The approximation must reproduce curvature along buffered dirs.
        let pred = b.hvp(&dws[3]);
        let rel = vector::l2_distance(&pred, &dgs[3]) / vector::l2_norm(&dgs[3]);
        assert!(rel < 0.05, "relative secant error {rel}");
    }
}
