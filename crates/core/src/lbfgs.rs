//! Compact L-BFGS Hessian approximation (the paper's Algorithm 2).
//!
//! Given `s` vector pairs — model differences `ΔW = [Δw₁ … Δwₛ]` and
//! gradient differences `ΔGⁱ = [Δg₁ … Δgₛ]` for client `i` — the compact
//! (Byrd–Nocedal–Schnabel) representation of the BFGS matrix with initial
//! scaling `σI` is
//!
//! ```text
//! B = σI − [ΔG  σΔW] · M⁻¹ · [ΔGᵀ; σΔWᵀ],
//! M = [ −D   Lᵀ
//!        L   σΔWᵀΔW ],
//! ```
//!
//! where `A = ΔWᵀΔG`, `L = tril(A)` (strictly lower), `D = diag(A)`, and
//! `σ = (Δgₛᵀ Δwₛ)/(Δwₛᵀ Δwₛ)` — exactly Algorithm 2's lines 1–6, with the
//! practical difference that the `d × d` matrix `B` is never materialised:
//! [`LbfgsApprox::hvp`] computes the Hessian-vector product `B·v` the
//! recovery loop needs (Eq. 6) using only `d × 2s` work.

use fuiov_tensor::solve::Lu;
use fuiov_tensor::{vector, Mat};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Why an L-BFGS approximation could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum LbfgsError {
    /// No vector pairs were supplied.
    Empty,
    /// `ΔW`/`ΔG` counts or dimensions disagree.
    ShapeMismatch,
    /// The curvature `Δgₛᵀ Δwₛ` or `‖Δwₛ‖²` is non-positive / non-finite,
    /// so the BFGS scaling `σ` is undefined.
    BadCurvature {
        /// The offending σ numerator `Δgᵀ Δw`.
        sy: f32,
    },
    /// The `2s × 2s` middle matrix is singular (linearly dependent pairs).
    SingularMiddle,
}

impl fmt::Display for LbfgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbfgsError::Empty => write!(f, "no L-BFGS vector pairs supplied"),
            LbfgsError::ShapeMismatch => write!(f, "vector pair shapes disagree"),
            LbfgsError::BadCurvature { sy } => {
                write!(
                    f,
                    "non-positive curvature (Δgᵀ·Δw = {sy}); BFGS scaling undefined"
                )
            }
            LbfgsError::SingularMiddle => write!(f, "singular L-BFGS middle matrix"),
        }
    }
}

impl Error for LbfgsError {}

/// A ready-to-apply compact L-BFGS Hessian approximation.
#[derive(Debug, Clone)]
pub struct LbfgsApprox {
    /// `d × s` model differences.
    dw: Mat,
    /// `d × s` gradient differences.
    dg: Mat,
    /// Factored `2s × 2s` middle matrix.
    middle: Lu,
    sigma: f32,
}

impl LbfgsApprox {
    /// Builds the approximation from parallel lists of vector pairs
    /// (ordered oldest → newest; the newest pair defines σ).
    ///
    /// # Errors
    ///
    /// Returns [`LbfgsError`] if the inputs are empty or inconsistent, the
    /// newest pair has non-positive curvature, or the middle matrix is
    /// singular.
    pub fn new(dws: &[Vec<f32>], dgs: &[Vec<f32>]) -> Result<Self, LbfgsError> {
        Self::build(dws, dgs)
    }

    /// [`LbfgsApprox::new`] over borrowed columns — the allocation-free
    /// call shape for ring-buffered pairs ([`PairBuffer::approximation`]).
    ///
    /// # Errors
    ///
    /// As [`LbfgsApprox::new`].
    pub fn from_slices(dws: &[&[f32]], dgs: &[&[f32]]) -> Result<Self, LbfgsError> {
        Self::build(dws, dgs)
    }

    fn build<A: AsRef<[f32]>, B: AsRef<[f32]>>(dws: &[A], dgs: &[B]) -> Result<Self, LbfgsError> {
        if dws.is_empty() || dgs.is_empty() {
            return Err(LbfgsError::Empty);
        }
        if dws.len() != dgs.len() {
            return Err(LbfgsError::ShapeMismatch);
        }
        let dim = dws[0].as_ref().len();
        if dim == 0
            || dws.iter().any(|v| v.as_ref().len() != dim)
            || dgs.iter().any(|v| v.as_ref().len() != dim)
        {
            return Err(LbfgsError::ShapeMismatch);
        }

        let last = dws.len() - 1;
        let sy = vector::dot(dgs[last].as_ref(), dws[last].as_ref());
        let ss = vector::dot(dws[last].as_ref(), dws[last].as_ref());
        if sy <= 0.0 || ss <= 0.0 || !sy.is_finite() || !ss.is_finite() {
            return Err(LbfgsError::BadCurvature { sy });
        }
        let sigma = sy / ss;

        let dw = Mat::from_cols(dws);
        let dg = Mat::from_cols(dgs);

        // A = ΔWᵀ ΔG; L = tril(A) strictly below diagonal; D = diag(A).
        let a = dw.tr_matmul(&dg);
        let l = a.tril_strict();
        let d = a.diag();

        // Middle matrix M = [ -D  Lᵀ ; L  σ·ΔWᵀΔW ].
        let mut neg_d = d;
        neg_d.scale_in_place(-1.0);
        let lt = l.transpose();
        let mut sww = dw.tr_matmul(&dw);
        sww.scale_in_place(sigma);
        let m = Mat::block2x2(&neg_d, &lt, &l, &sww);

        let middle = Lu::factor(&m).map_err(|_| LbfgsError::SingularMiddle)?;
        Ok(LbfgsApprox {
            dw,
            dg,
            middle,
            sigma,
        })
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dw.rows()
    }

    /// Number of stored vector pairs `s`.
    pub fn pairs(&self) -> usize {
        self.dw.cols()
    }

    /// The initial-scaling coefficient σ.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Hessian-vector product `B·v` (Algorithm 2 applied to `v`; this is
    /// the `H̃ᵗᵢ·(w̄ₜ − wₜ)` term of Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn hvp(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; v.len()];
        self.hvp_into(v, &mut out);
        out
    }

    /// The textbook five-pass chain (two `tr_matvec`s, an explicit scale,
    /// a solve, two `matvec` + `axpy` passes) that [`LbfgsApprox::hvp`]'s
    /// fused implementation replaced. Kept as the differential baseline:
    /// the unit tests demand `hvp` reproduce it bit for bit, and the
    /// recovery-round benchmark measures the batched engine against it.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn hvp_reference(&self, v: &[f32]) -> Vec<f32> {
        let s = self.pairs();
        let top = self.dg.tr_matvec(v);
        let mut bottom = self.dw.tr_matvec(v);
        vector::scale(self.sigma, &mut bottom);
        let mut rhs = Vec::with_capacity(2 * s);
        rhs.extend_from_slice(&top);
        rhs.extend_from_slice(&bottom);
        let p = self.middle.solve(&rhs);
        let mut out: Vec<f32> = v.to_vec();
        vector::scale(self.sigma, &mut out);
        let part_g = self.dg.matvec(&p[..s]);
        vector::axpy(-1.0, &part_g, &mut out);
        let part_w = self.dw.matvec(&p[s..]);
        vector::axpy(-self.sigma, &part_w, &mut out);
        out
    }

    /// [`LbfgsApprox::hvp`] into a caller-owned buffer.
    ///
    /// The implementation makes two fused sweeps over the `d × s` factors
    /// instead of the textbook five (`ΔGᵀv`, `ΔWᵀv`, `σv`, `ΔG·p`, `ΔW·p`):
    /// one inbound pass accumulating both halves of the rhs, one outbound
    /// pass combining `σv − ΔG·p₁ − σΔW·p₂` element by element. Per output
    /// element the `f32` operation sequence is exactly the naive chain
    /// (`tr_matvec` per column, `scale`, `solve`, `matvec` + two `axpy`),
    /// so the result is bitwise identical to the pre-fusion implementation
    /// — the property the replay golden traces pin.
    ///
    /// Only `O(s)` scratch is allocated; the `d`-length temporaries of the
    /// naive chain are gone.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()` or `out.len() != dim()`.
    pub fn hvp_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.dim(), "hvp: dimension mismatch");
        assert_eq!(out.len(), self.dim(), "hvp: output dimension mismatch");
        let s = self.pairs();
        // rhs = [ΔGᵀ v ; σ ΔWᵀ v]: both per-column f64 accumulators advance
        // together in one sweep over the rows, preserving `tr_matvec`'s
        // per-column order (ascending r, skipping v[r] == 0), and the
        // bottom half is rounded to f32 *before* the σ scaling — exactly
        // `tr_matvec` then `vector::scale`.
        let mut acc_g = vec![0.0f64; s];
        let mut acc_w = vec![0.0f64; s];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let row_g = self.dg.row(r);
            let row_w = self.dw.row(r);
            for j in 0..s {
                acc_g[j] += f64::from(vr) * f64::from(row_g[j]);
                acc_w[j] += f64::from(vr) * f64::from(row_w[j]);
            }
        }
        let mut rhs = Vec::with_capacity(2 * s);
        rhs.extend(acc_g.iter().map(|&x| x as f32));
        rhs.extend(acc_w.iter().map(|&x| (x as f32) * self.sigma));

        let p = self.middle.solve(&rhs);

        // out = σ v − ΔG·p[..s] − σ ΔW·p[s..], fused: the two row dots are
        // `vector::dot`'s f64 accumulation (ascending j, no zero skip) and
        // the combination replays `scale` + two `axpy`s per element.
        apply_compact(&self.dg, &self.dw, self.sigma, &p, v, out, false);
    }

    /// `d × s` gradient-difference factor `ΔG` (batch-engine access).
    pub(crate) fn dg_mat(&self) -> &Mat {
        &self.dg
    }

    /// `d × s` model-difference factor `ΔW` (batch-engine access).
    pub(crate) fn dw_mat(&self) -> &Mat {
        &self.dw
    }

    /// Factored middle matrix (batch-engine access).
    pub(crate) fn middle_lu(&self) -> &Lu {
        &self.middle
    }

    /// Materialises the dense `d × d` approximation by applying
    /// [`LbfgsApprox::hvp`] to unit vectors — Algorithm 2 exactly as
    /// written. Only sensible for tiny models; used for cross-validation
    /// in tests and the `micro` ablation bench.
    pub fn dense(&self) -> Mat {
        let d = self.dim();
        let cols: Vec<Vec<f32>> = (0..d)
            .map(|j| {
                let mut e = vec![0.0; d];
                e[j] = 1.0;
                self.hvp(&e)
            })
            .collect();
        Mat::from_cols(&cols)
    }
}

/// Shared outbound kernel of the compact representation:
/// `out[r] (+)= σ·v[r] − (ΔG·p₁)[r] − σ·(ΔW·p₂)[r]`.
///
/// Row dots accumulate in `f64` over ascending `j` with no zero skip
/// (exactly [`fuiov_tensor::vector::dot`] as called by `Mat::matvec`), and
/// the per-element combination replays the naive chain's `scale` + two
/// `axpy`s, so both callers ([`LbfgsApprox::hvp_into`] and the batched
/// engine) produce the same bits as the original five-pass implementation.
// `-1.0 * x` is deliberate: it replays `axpy(-1.0, …)`'s exact `a * xi`
// multiply so the combination stays bit-for-bit the original chain.
#[allow(clippy::neg_multiply)]
pub(crate) fn apply_compact(
    dg: &Mat,
    dw: &Mat,
    sigma: f32,
    p: &[f32],
    v: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    let s = dg.cols();
    let (p1, p2) = p.split_at(s);
    for (r, (&vr, slot)) in v.iter().zip(out.iter_mut()).enumerate() {
        let mut acc_g = 0.0f64;
        for (x, &pj) in dg.row(r).iter().zip(p1) {
            acc_g += f64::from(*x) * f64::from(pj);
        }
        let part_g = acc_g as f32;
        let mut acc_w = 0.0f64;
        for (x, &pj) in dw.row(r).iter().zip(p2) {
            acc_w += f64::from(*x) * f64::from(pj);
        }
        let part_w = acc_w as f32;
        let mut t = vr * sigma;
        t += -1.0 * part_g;
        t += -sigma * part_w;
        if accumulate {
            *slot += 1.0 * t;
        } else {
            *slot = t;
        }
    }
}

/// A FIFO buffer of at most `s` vector pairs, as maintained per client
/// during recovery ("vector pairs are updated every … rounds", §V-A3).
///
/// Backed by ring buffers: eviction pops the oldest pair in O(1) instead of
/// shifting every stored vector (`Vec::remove(0)` was O(s·d) per push), and
/// [`PairBuffer::push_from_slices`] recycles the evicted allocations so a
/// full buffer reaches a zero-allocation steady state.
#[derive(Debug, Clone, Default)]
pub struct PairBuffer {
    capacity: usize,
    dws: VecDeque<Vec<f32>>,
    dgs: VecDeque<Vec<f32>>,
}

impl PairBuffer {
    /// Creates a buffer holding at most `capacity` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PairBuffer: capacity must be positive");
        PairBuffer {
            capacity,
            dws: VecDeque::with_capacity(capacity),
            dgs: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.dws.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.dws.is_empty()
    }

    /// Pushes a pair, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if `dw`/`dg` lengths differ from each other or from stored
    /// pairs.
    pub fn push(&mut self, dw: Vec<f32>, dg: Vec<f32>) {
        self.check_shapes(&dw, &dg);
        if self.dws.len() == self.capacity {
            self.dws.pop_front();
            self.dgs.pop_front();
        }
        self.dws.push_back(dw);
        self.dgs.push_back(dg);
    }

    /// Pushes a pair copied from borrowed slices, recycling the evicted
    /// pair's storage when the buffer is full — the replay hot loop's
    /// allocation-free push.
    ///
    /// # Panics
    ///
    /// As [`PairBuffer::push`].
    pub fn push_from_slices(&mut self, dw: &[f32], dg: &[f32]) {
        self.check_shapes(dw, dg);
        let (mut rw, mut rg) = if self.dws.len() == self.capacity {
            (
                self.dws.pop_front().expect("full buffer has a front"),
                self.dgs.pop_front().expect("full buffer has a front"),
            )
        } else {
            (Vec::with_capacity(dw.len()), Vec::with_capacity(dg.len()))
        };
        rw.clear();
        rw.extend_from_slice(dw);
        rg.clear();
        rg.extend_from_slice(dg);
        self.dws.push_back(rw);
        self.dgs.push_back(rg);
    }

    fn check_shapes(&self, dw: &[f32], dg: &[f32]) {
        assert_eq!(dw.len(), dg.len(), "PairBuffer::push: pair length mismatch");
        if let Some(first) = self.dws.front() {
            assert_eq!(first.len(), dw.len(), "PairBuffer::push: dimension changed");
        }
    }

    /// Maximum number of pairs the buffer holds before evicting.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the stored pairs oldest → newest as borrowed `(dw, dg)`
    /// slices — the exact order [`PairBuffer::push`] replays them, so a
    /// checkpoint codec that serialises this iteration and pushes it back
    /// reconstructs the buffer bit for bit.
    pub fn pairs(&self) -> impl Iterator<Item = (&[f32], &[f32])> {
        self.dws
            .iter()
            .map(Vec::as_slice)
            .zip(self.dgs.iter().map(Vec::as_slice))
    }

    /// Builds the L-BFGS approximation from the buffered pairs (borrowed
    /// oldest → newest; no pair is cloned).
    ///
    /// # Errors
    ///
    /// Propagates [`LbfgsError`] from [`LbfgsApprox::new`] (including
    /// [`LbfgsError::Empty`] when the buffer has no pairs yet).
    pub fn approximation(&self) -> Result<LbfgsApprox, LbfgsError> {
        let dws: Vec<&[f32]> = self.dws.iter().map(Vec::as_slice).collect();
        let dgs: Vec<&[f32]> = self.dgs.iter().map(Vec::as_slice).collect();
        LbfgsApprox::from_slices(&dws, &dgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds pairs from a known quadratic with Hessian Q: Δg = Q·Δw.
    fn quadratic_pairs(q: &Mat, dws: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let dgs: Vec<Vec<f32>> = dws.iter().map(|w| q.matvec(w)).collect();
        (dws.to_vec(), dgs)
    }

    #[test]
    fn isotropic_quadratic_is_recovered_exactly() {
        // Q = 3I: every direction has curvature 3, so B ≡ 3I.
        let q = {
            let mut m = Mat::eye(4);
            m.scale_in_place(3.0);
            m
        };
        let dws = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 1.0, 0.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        assert!((b.sigma() - 3.0).abs() < 1e-5);
        let v = vec![0.5, -1.0, 2.0, 0.25];
        let bv = b.hvp(&v);
        let qv = q.matvec(&v);
        assert!(vector::l2_distance(&bv, &qv) < 1e-4);
    }

    #[test]
    fn secant_equation_holds_for_newest_pair() {
        // Anisotropic quadratic.
        let q = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 2.0]]);
        let dws = vec![vec![1.0, 0.0, 0.0], vec![0.2, 1.0, -0.3]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let pred = b.hvp(&dws[1]);
        assert!(
            vector::l2_distance(&pred, &dgs[1]) < 1e-3,
            "secant violated: {pred:?} vs {:?}",
            dgs[1]
        );
    }

    #[test]
    fn dense_matches_hvp() {
        let q = Mat::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]);
        let dws = vec![vec![1.0, 0.2], vec![-0.1, 1.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let dense = b.dense();
        let v = vec![0.7, -0.4];
        let via_dense = dense.matvec(&v);
        let via_hvp = b.hvp(&v);
        assert!(vector::l2_distance(&via_dense, &via_hvp) < 1e-5);
        // Dense approximation of a 2-D quadratic with 2 independent pairs
        // should reproduce Q closely (f32 round-off leaves ~4e-3).
        assert!(dense.max_abs_diff(&q) < 1e-2, "dense={dense:?}");
    }

    #[test]
    fn hvp_is_linear() {
        let q = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let dws = vec![vec![1.0, 1.0]];
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        let u = vec![1.0, -2.0];
        let v = vec![0.5, 3.0];
        let sum = vector::add(&u, &v);
        let lhs = b.hvp(&sum);
        let rhs = vector::add(&b.hvp(&u), &b.hvp(&v));
        assert!(vector::l2_distance(&lhs, &rhs) < 1e-4);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert_eq!(LbfgsApprox::new(&[], &[]).unwrap_err(), LbfgsError::Empty);
        assert_eq!(
            LbfgsApprox::new(&[vec![1.0]], &[]).unwrap_err(),
            LbfgsError::Empty
        );
        assert_eq!(
            LbfgsApprox::new(&[vec![1.0], vec![2.0]], &[vec![1.0]]).unwrap_err(),
            LbfgsError::ShapeMismatch
        );
        assert_eq!(
            LbfgsApprox::new(&[vec![1.0, 2.0]], &[vec![1.0]]).unwrap_err(),
            LbfgsError::ShapeMismatch
        );
    }

    #[test]
    fn rejects_negative_curvature() {
        // Δg anti-parallel to Δw → sy < 0.
        let err = LbfgsApprox::new(&[vec![1.0, 0.0]], &[vec![-1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, LbfgsError::BadCurvature { .. }));
        assert!(err.to_string().contains("curvature"));
    }

    #[test]
    fn duplicate_pairs_still_satisfy_secant() {
        // Identical pairs keep the middle matrix invertible thanks to the
        // −D block; the approximation must still satisfy the secant
        // equation. (True singularity — e.g. a zero Δw — surfaces as
        // BadCurvature or SingularMiddle and is handled by the recovery
        // loop's fallback.)
        let dw = vec![1.0, 2.0, 3.0];
        let dg = vec![2.0, 4.0, 6.0];
        let b = LbfgsApprox::new(&[dw.clone(), dw.clone()], &[dg.clone(), dg.clone()]).unwrap();
        let pred = b.hvp(&dw);
        assert!(vector::l2_distance(&pred, &dg) < 1e-3);
    }

    #[test]
    fn zero_pair_is_rejected() {
        let err = LbfgsApprox::new(&[vec![0.0, 0.0]], &[vec![0.0, 0.0]]).unwrap_err();
        assert!(matches!(err, LbfgsError::BadCurvature { .. }));
    }

    #[test]
    fn pair_buffer_fifo_eviction() {
        let mut buf = PairBuffer::new(2);
        assert!(buf.is_empty());
        buf.push(vec![1.0, 0.0], vec![2.0, 0.0]);
        buf.push(vec![0.0, 1.0], vec![0.0, 3.0]);
        buf.push(vec![1.0, 1.0], vec![2.0, 3.0]);
        assert_eq!(buf.len(), 2);
        // Oldest pair evicted: sigma now comes from the newest pair.
        let approx = buf.approximation().unwrap();
        let expected_sigma =
            vector::dot(&[2.0, 3.0], &[1.0, 1.0]) / vector::dot(&[1.0, 1.0], &[1.0, 1.0]);
        assert!((approx.sigma() - expected_sigma).abs() < 1e-6);
    }

    #[test]
    fn fused_hvp_matches_original_five_pass_chain_bitwise() {
        // Reimplements the pre-fusion implementation (two tr_matvecs, an
        // explicit scale, a solve, two matvec+axpy passes) and demands the
        // fused kernel reproduce it bit for bit — this is the contract
        // that keeps the replay golden traces frozen. Exercise several s/d
        // shapes, including vectors with exact zeros (the tr_matvec skip).
        for (salt, d, s) in [(1u64, 7usize, 1usize), (2, 40, 2), (3, 129, 4)] {
            let mut seed = salt;
            let mut next = || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            };
            let dws: Vec<Vec<f32>> = (0..s).map(|_| (0..d).map(|_| next()).collect()).collect();
            // dg = dw scaled per-coordinate by a positive factor: positive
            // curvature guaranteed, anisotropic enough to be interesting.
            let dgs: Vec<Vec<f32>> = dws
                .iter()
                .map(|w| {
                    w.iter()
                        .enumerate()
                        .map(|(i, x)| x * (1.0 + (i % 5) as f32))
                        .collect()
                })
                .collect();
            let b = LbfgsApprox::new(&dws, &dgs).unwrap();
            let v: Vec<f32> = (0..d)
                .map(|i| if i % 7 == 0 { 0.0 } else { next() })
                .collect();

            // The original chain, now kept alive as `hvp_reference`.
            let naive = b.hvp_reference(&v);

            let fused = b.hvp(&v);
            assert_eq!(
                fused.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                naive.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fused hvp diverged at d={d} s={s}"
            );
        }
    }

    #[test]
    fn push_from_slices_matches_push_and_recycles() {
        let mut a = PairBuffer::new(2);
        let mut b = PairBuffer::new(2);
        let pairs: Vec<(Vec<f32>, Vec<f32>)> = (0..4)
            .map(|i| {
                let w: Vec<f32> = (0..3).map(|j| (i * 3 + j) as f32 + 1.0).collect();
                let g: Vec<f32> = w.iter().map(|x| x * 2.0).collect();
                (w, g)
            })
            .collect();
        for (w, g) in &pairs {
            a.push(w.clone(), g.clone());
            b.push_from_slices(w, g);
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        let (aa, bb) = (a.approximation().unwrap(), b.approximation().unwrap());
        assert_eq!(aa.sigma().to_bits(), bb.sigma().to_bits());
        let v = vec![0.3, -0.7, 1.1];
        assert_eq!(
            aa.hvp(&v).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            bb.hvp(&v).iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pair_buffer_empty_approximation_errors() {
        let buf = PairBuffer::new(2);
        assert_eq!(buf.approximation().unwrap_err(), LbfgsError::Empty);
    }

    #[test]
    fn larger_random_quadratic_hvp_error_is_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let d = 12;
        // SPD matrix Q = R Rᵀ + I.
        let r_data: Vec<f32> = (0..d * d).map(|_| rng.gen_range(-0.4..0.4)).collect();
        let r = Mat::from_vec(d, d, r_data);
        let mut q = r.matmul(&r.transpose());
        for i in 0..d {
            q.set(i, i, q.get(i, i) + 1.0);
        }
        let dws: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let (dws, dgs) = quadratic_pairs(&q, &dws);
        let b = LbfgsApprox::new(&dws, &dgs).unwrap();
        // The approximation must reproduce curvature along buffered dirs.
        let pred = b.hvp(&dws[3]);
        let rel = vector::l2_distance(&pred, &dgs[3]) / vector::l2_norm(&dgs[3]);
        assert!(rel < 0.05, "relative secant error {rel}");
    }
}
