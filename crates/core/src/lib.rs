//! Federated unlearning for the Internet of Vehicles — the core of the
//! DSN 2024 paper reproduction.
//!
//! The pipeline has three stages, each with its own module:
//!
//! 1. **Forget by backtracking** ([`mod@backtrack`], Eq. 5): roll the global
//!    model back to `w_F`, the state before the forgotten vehicle joined.
//!    Training results from rounds `1..F` are preserved — no
//!    re-initialisation.
//! 2. **Approximate curvature** ([`lbfgs`], Algorithm 2): per remaining
//!    client, a compact L-BFGS Hessian approximation built from vector
//!    pairs seeded with pre-`F` history, so recovery works even after
//!    vehicles leave the federation.
//! 3. **Recover server-side** ([`mod@recover`], Algorithm 1): replay rounds
//!    `F..T` estimating every remaining client's gradient via the Cauchy
//!    mean value theorem (Eq. 6) from the **stored gradient directions
//!    only**, clip element-wise (Eq. 7), and aggregate with FedAvg.
//!
//! [`Unlearner`] is the high-level entry point; `fuiov_fl::Server`
//! produces the [`fuiov_storage::HistoryStore`] it consumes. [`mod@jobs`]
//! wraps the pipeline in a resumable job service: concurrent forget
//! requests on snapshot-isolated history views, incremental FNV-sealed
//! checkpoints, crash-safe resume, and cross-job batched replay.

pub mod backtrack;
pub mod batch;
pub mod error;
pub mod jobs;
pub mod lbfgs;
pub mod recover;
pub mod subtree;
pub mod unlearner;
pub mod verify;

pub use backtrack::{backtrack, backtrack_set, BacktrackResult};
pub use batch::{fused_dots_multi, RoundScratch, StackedLbfgs};
pub use error::UnlearnError;
pub use jobs::{ingest_requests, JobConfig, JobId, JobLog, JobService, LoggedCheckpoint};
pub use lbfgs::{LbfgsApprox, LbfgsError, PairBuffer};
pub use recover::{
    calibrate_lr, recover, recover_set, recover_set_scoped, GradientOracle, NoOracle,
    RecoveryConfig, RecoveryOutcome,
};
pub use subtree::{recover_vehicle, recover_vehicle_flat, VehicleRecovery};
pub use unlearner::{ClientPoolOracle, Unlearner};
pub use verify::{forgetting_score, membership_advantage};
