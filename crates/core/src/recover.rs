//! Server-side recovery of the unlearned model (the paper's §IV-B and
//! Algorithm 1).
//!
//! After backtracking to `w̄ = w_F`, the server replays rounds `F..T`
//! *without any client participation*. For each remaining client `i` and
//! round `t` it estimates the gradient the client *would* report at the
//! recovered model via the integral Cauchy mean value theorem (Eq. 6):
//!
//! ```text
//! ḡᵗᵢ = gᵗᵢ + H̃ᵗᵢ · (w̄ₜ − wₜ)
//! ```
//!
//! where `gᵗᵢ` is the **stored direction** of the client's historical
//! gradient (±1/0 — the paper's headline storage trick) and `H̃ᵗᵢ` is the
//! client's compact L-BFGS Hessian approximation. Estimates are clipped
//! element-wise at threshold `L` (Eq. 7), aggregated with the original
//! rule (Eq. 1) and applied with the original learning rate (Eq. 2).
//!
//! The L-BFGS vector pairs are seeded from the `s` rounds *before* `F`
//! (the paper's trick that makes recovery possible after vehicles leave
//! the federation) and refreshed periodically from recovered information
//! as replay proceeds.

use crate::batch::{RoundScratch, StackedLbfgs};
use crate::error::UnlearnError;
use crate::lbfgs::{LbfgsApprox, PairBuffer};
use fuiov_fl::aggregate::aggregate_refs;
use fuiov_fl::config::AggregationRule;
use fuiov_storage::{ClientId, HistoryStore, Round};
use fuiov_tensor::{pool, vector};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Configuration of the recovery stage, defaulting to the paper's §V-A3
/// hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Server learning rate `η` (the paper reuses the training rate).
    pub lr: f32,
    /// Element-wise clip threshold `L` (paper default 1.0).
    pub clip_threshold: f32,
    /// Vector-pair buffer size `s` (paper default 2).
    pub buffer_size: usize,
    /// Refresh the vector pairs every this many replayed rounds (paper
    /// default 21).
    pub pair_refresh_interval: usize,
    /// Aggregation rule (the paper recovers with FedAvg).
    pub aggregation: AggregationRule,
    /// Apply the L-BFGS Hessian correction of Eq. 6. Disabling degrades
    /// the estimate to a raw sign-replay (`ḡᵗᵢ = gᵗᵢ`) — the ablation the
    /// DESIGN.md design-choices section calls out.
    pub hessian_correction: bool,
    /// Reconstruct replay-round models that were thinned away
    /// ([`HistoryStore::thinned_models`]) by linear interpolation between
    /// the surviving checkpoints. Off by default (a missing model is an
    /// error, as in the paper's full-history setting).
    ///
    /// [`HistoryStore::thinned_models`]: fuiov_storage::HistoryStore::thinned_models
    pub interpolate_missing_models: bool,
    /// §IV-B's adaptive trigger: when the recovered trajectory's distance
    /// to the historical trajectory (`‖w̄ₜ − wₜ‖`) grows for this many
    /// consecutive rounds, refresh the vector pairs immediately instead of
    /// waiting for the fixed interval. `None` disables the trigger.
    pub divergence_patience: Option<usize>,
}

impl RecoveryConfig {
    /// Paper defaults with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "RecoveryConfig: invalid learning rate"
        );
        RecoveryConfig {
            lr,
            clip_threshold: 1.0,
            buffer_size: 2,
            pair_refresh_interval: 21,
            aggregation: AggregationRule::FedAvg,
            hessian_correction: true,
            interpolate_missing_models: false,
            // Off by default: the paper refreshes on a fixed interval, and
            // the exp_trace ablation showed the adaptive trigger's extra
            // refreshes slightly hurt at reduced scale. Enable per run.
            divergence_patience: None,
        }
    }

    /// Sets (or disables, with `None`) the divergence-triggered refresh.
    pub fn divergence_patience(mut self, patience: Option<usize>) -> Self {
        self.divergence_patience = patience;
        self
    }

    /// Enables interpolation of thinned-away replay models.
    pub fn interpolate_missing_models(mut self, on: bool) -> Self {
        self.interpolate_missing_models = on;
        self
    }

    /// Disables the Eq. 6 Hessian correction (sign-replay ablation).
    pub fn without_hessian(mut self) -> Self {
        self.hessian_correction = false;
        self
    }

    /// Sets the clip threshold `L`.
    ///
    /// # Panics
    ///
    /// Panics if not strictly positive and finite.
    pub fn clip_threshold(mut self, l: f32) -> Self {
        assert!(
            l > 0.0 && l.is_finite(),
            "RecoveryConfig: invalid clip threshold"
        );
        self.clip_threshold = l;
        self
    }

    /// Sets the vector-pair buffer size `s`.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn buffer_size(mut self, s: usize) -> Self {
        assert!(s > 0, "RecoveryConfig: buffer size must be positive");
        self.buffer_size = s;
        self
    }

    /// Sets the vector-pair refresh interval.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn pair_refresh_interval(mut self, rounds: usize) -> Self {
        assert!(
            rounds > 0,
            "RecoveryConfig: refresh interval must be positive"
        );
        self.pair_refresh_interval = rounds;
        self
    }

    /// Sets the aggregation rule used during replay.
    pub fn aggregation(mut self, rule: AggregationRule) -> Self {
        self.aggregation = rule;
        self
    }
}

/// Estimates a recovery learning rate from the stored history such that
/// sign-magnitude replay reproduces the original training's per-round
/// parameter movement.
///
/// The paper reuses the training rate `η` (§V-A3); that is appropriate
/// when stored-direction magnitudes (±1) are comparable to true gradient
/// elements. When they are not (small-gradient regimes), replaying signs
/// at `η` overshoots by the magnitude ratio. This helper measures both
/// sides from data the server already has:
///
/// ```text
/// η_rec = mean_t mean_j |w_{t+1,j} − w_{t,j}|   (observed step size)
///         ───────────────────────────────────
///         mean_t mean_j |FedAvg(signs)_{t,j}|   (replayed step at η = 1)
/// ```
///
/// Returns `None` if the history has fewer than two models or no
/// recorded directions.
pub fn calibrate_lr(history: &HistoryStore) -> Option<f32> {
    let mut step_sum = 0.0f64;
    let mut dir_sum = 0.0f64;
    let mut samples = 0usize;
    let mut agg: Vec<f64> = Vec::new(); // recycled across windows

    // Pairwise walk of consecutive recorded rounds, streaming each round
    // through its snapshot view (no per-call Vec, no model copies even
    // when `a` sits in the spill tier).
    let mut later = history.rounds_iter();
    later.next()?;
    for (a, b) in history.rounds_iter().zip(later) {
        let view = history.round_view(a);
        let (Some(wa), Some(wb)) = (view.model(), history.model(b)) else {
            continue;
        };
        if view.n_clients() == 0 {
            continue;
        }
        let dim = wa.len();
        agg.clear();
        agg.resize(dim, 0.0);
        let mut wsum = 0.0f64;
        for (c, dir) in view.directions() {
            let w = f64::from(history.weight(c));
            wsum += w;
            // Word-level LUT decode fused with the weighted accumulation —
            // same per-element `acc += w · sign` as the scalar path.
            dir.decode_axpy(w, &mut agg);
        }
        if wsum == 0.0 {
            continue;
        }
        let step: f64 = wa
            .iter()
            .zip(wb.iter())
            .map(|(x, y)| (f64::from(*x) - f64::from(*y)).abs())
            .sum::<f64>()
            / dim as f64;
        let dir_mag: f64 = agg.iter().map(|v| (v / wsum).abs()).sum::<f64>() / dim as f64;
        if dir_mag > 0.0 && step > 0.0 {
            step_sum += step;
            dir_sum += dir_mag;
            samples += 1;
        }
    }
    fuiov_obs::counter!("core.calibrations").inc();
    fuiov_obs::counter!("core.calibrate_samples").add(samples as u64);
    if samples == 0 || dir_sum == 0.0 {
        return None;
    }
    let lr = (step_sum / dir_sum) as f32;
    (lr.is_finite() && lr > 0.0).then_some(lr)
}

/// Optional access to still-online vehicles during recovery.
///
/// The paper (§IV-B): *"If some vehicles do not submit enough gradients in
/// rounds from F−s to F−1 and are still online in FL, the server could
/// dispatch historical models that correspond with the rounds of the
/// missing gradients to these vehicles."* Implementations compute a real
/// gradient at a dispatched model; returning `None` means the vehicle is
/// offline (left the federation), in which case the server falls back to
/// history-only estimation.
pub trait GradientOracle {
    /// The gradient of client `client`'s local loss at `params`, or
    /// `None` if the client is unreachable.
    fn gradient_at(&mut self, client: ClientId, params: &[f32]) -> Option<Vec<f32>>;
}

/// The no-clients-available oracle: every vehicle has left the federation.
/// This is the paper's headline setting — recovery from history alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl GradientOracle for NoOracle {
    fn gradient_at(&mut self, _client: ClientId, _params: &[f32]) -> Option<Vec<f32>> {
        None
    }
}

/// Statistics and result of a recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The recovered global model `w̄_T`.
    pub params: Vec<f32>,
    /// The forgotten clients.
    pub clients: Vec<ClientId>,
    /// The backtrack point `F`.
    pub start_round: Round,
    /// The final round `T`.
    pub end_round: Round,
    /// Rounds actually replayed (`T − F`).
    pub rounds_replayed: usize,
    /// Client-rounds where no L-BFGS approximation was available and the
    /// raw stored direction was used (H term omitted).
    pub estimator_fallbacks: usize,
    /// Times a live vehicle was asked for a gradient (oracle hits).
    pub oracle_queries: usize,
    /// Client-rounds outside the replay scope whose sealed historical
    /// aggregate was replayed verbatim (hierarchical recovery: sibling
    /// subtrees are exactly unchanged by the forget, so their stored
    /// directions need no estimation). Zero for unscoped recovery.
    pub sibling_reuses: usize,
    /// L2 norm of each round's aggregated update.
    pub update_norms: Vec<f32>,
}

/// Runs Algorithm 1: backtrack to `w_F`, then replay rounds `F..T` with
/// Cauchy-MVT gradient estimation, clipping and FedAvg.
///
/// `on_round` is invoked after every replayed round with `(t, w̄)` so
/// callers can trace accuracy curves.
///
/// # Errors
///
/// Propagates [`UnlearnError`] from backtracking, plus
/// [`UnlearnError::NothingToRecover`] when `F = T` and
/// [`UnlearnError::MissingModel`] if a replay round's model is missing.
pub fn recover(
    history: &HistoryStore,
    forgotten: ClientId,
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
    on_round: impl FnMut(Round, &[f32]),
) -> Result<RecoveryOutcome, UnlearnError> {
    recover_set(history, &[forgotten], config, oracle, on_round)
}

/// Runs Algorithm 1 for a *set* of forgotten clients (e.g. all detected
/// attackers in the Fig. 1 scenario): backtrack to the earliest join round
/// among them, then replay with every member of the set excluded.
///
/// # Errors
///
/// See [`recover`]; additionally an empty set is rejected.
pub fn recover_set(
    history: &HistoryStore,
    forgotten: &[ClientId],
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
    on_round: impl FnMut(Round, &[f32]),
) -> Result<RecoveryOutcome, UnlearnError> {
    recover_set_scoped(history, forgotten, None, config, oracle, on_round)
}

/// [`recover_set`] with a replay *scope*: only clients in `scope` get the
/// Eq. 6 Cauchy-MVT estimation machinery (pair seeding, L-BFGS stacking,
/// Hessian sweeps); every other client's stored direction is replayed
/// verbatim. This is the hierarchical fast path — when forgetting one
/// vehicle, only the aggregator nodes on its root-to-leaf path have a
/// changed aggregate, so the group-level history replays sibling-subtree
/// aggregates raw (counted on `hierarchy.sibling_aggregates_reused`) and
/// the estimation cost scales with the scope, not the cohort.
///
/// `scope: None` estimates everyone — exactly [`recover_set`].
///
/// # Errors
///
/// See [`recover_set`].
pub fn recover_set_scoped(
    history: &HistoryStore,
    forgotten: &[ClientId],
    scope: Option<&[ClientId]>,
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
    mut on_round: impl FnMut(Round, &[f32]),
) -> Result<RecoveryOutcome, UnlearnError> {
    let mut state = ReplayState::init_scoped(history, forgotten, scope, config, oracle)?;
    // All replay-loop temporaries live in one arena, recycled across
    // rounds: no per-round model clones, no per-client estimate vectors.
    let mut scratch = RoundScratch::new();
    while !state.is_done() {
        state.step(history, &mut scratch, None, &mut on_round)?;
    }
    Ok(state.finish())
}

/// The incremental form of [`recover_set`]: guards and §IV-B pair seeding
/// in [`ReplayState::init_scoped`], then exactly one replayed round per
/// [`ReplayState::step`] call. `recover_set` drives this state machine to
/// completion, so the one-shot path and the resumable `core::jobs` path
/// execute the *same* code — bitwise identical by construction, not by
/// parallel maintenance.
///
/// Every field that influences a future round's arithmetic lives here (and
/// is what the job checkpoint codec serialises); `roster`/`weights` are
/// per-round scratch recycled across steps, reconstructed from the history
/// each round.
#[derive(Debug, Clone)]
pub(crate) struct ReplayState {
    pub(crate) config: RecoveryConfig,
    /// The forgotten set, in caller order (reported in the outcome).
    pub(crate) forgotten: Vec<ClientId>,
    pub(crate) f_round: Round,
    pub(crate) t_end: Round,
    /// Next round to replay; `t_end` once the state is exhausted.
    pub(crate) next_round: Round,
    pub(crate) params: Vec<f32>,
    /// Remaining clients, ascending (the fixed roster order).
    pub(crate) remaining: Vec<ClientId>,
    /// Estimation scope, sorted ascending; `None` estimates everyone.
    /// Out-of-scope clients replay their stored directions verbatim.
    pub(crate) scope: Option<Vec<ClientId>>,
    pub(crate) buffers: BTreeMap<ClientId, PairBuffer>,
    pub(crate) approxes: BTreeMap<ClientId, LbfgsApprox>,
    pub(crate) prev_dw_norm: f32,
    pub(crate) growth_run: usize,
    pub(crate) estimator_fallbacks: usize,
    pub(crate) sibling_reuses: usize,
    pub(crate) oracle_queries: usize,
    pub(crate) update_norms: Vec<f32>,
    /// The batched engine: all clients' L-BFGS factors stacked into one
    /// matrix so each round runs ONE fused inbound sweep of the shared
    /// `w̄ₜ − wₜ` instead of n per-client passes. Rebuilt lazily whenever a
    /// pair refresh changes any approximation.
    pub(crate) stacked: StackedLbfgs,
    pub(crate) stacked_dirty: bool,
    /// Per-round roster `(client, stacked entry)`, recycled across steps.
    pub(crate) roster: Vec<(ClientId, Option<usize>)>,
    /// Per-round FedAvg weights parallel to `roster`, recycled.
    pub(crate) weights: Vec<f32>,
}

impl ReplayState {
    /// Runs the guards of Algorithm 1 and seeds the vector pairs from the
    /// `s` rounds before `F` (§IV-B), yielding a state positioned at
    /// `next_round == F`. With an estimation scope (see
    /// [`recover_set_scoped`]), pair seeding — the expensive part of
    /// init — runs only for in-scope clients.
    ///
    /// # Errors
    ///
    /// See [`recover_set`] — everything up to (not including) the first
    /// replayed round errors here.
    pub(crate) fn init_scoped(
        history: &HistoryStore,
        forgotten: &[ClientId],
        scope: Option<&[ClientId]>,
        config: &RecoveryConfig,
        oracle: &mut dyn GradientOracle,
    ) -> Result<Self, UnlearnError> {
        let scope: Option<Vec<ClientId>> = scope.map(|s| {
            let mut s = s.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        });
        if scope.is_some() {
            fuiov_obs::counter!("hierarchy.subtree_replays").inc();
        }
        let bt = crate::backtrack::backtrack_set(history, forgotten)?;
        let forgotten_set: std::collections::BTreeSet<ClientId> =
            forgotten.iter().copied().collect();
        let f_round = bt.join_round;
        let t_end = bt.latest_round;
        if f_round >= t_end {
            return Err(UnlearnError::NothingToRecover {
                join_round: f_round,
                latest_round: t_end,
            });
        }

        let params = bt.params;
        let remaining: Vec<ClientId> = history
            .clients()
            .into_iter()
            .filter(|c| !forgotten_set.contains(c))
            .collect();

        // Guard the empty membership window: if no remaining client
        // submitted a gradient anywhere in `F..T` (everyone else had
        // already left the federation), replay would degenerate to a
        // sequence of zero updates and hand back the backtracked model as
        // if it were recovered. Fail with a typed error instead so callers
        // can fall back (e.g. retrain).
        let window_has_participant = (f_round..t_end).any(|t| {
            history
                .clients_in_round_iter(t)
                .any(|c| !forgotten_set.contains(&c))
        });
        if remaining.is_empty() || !window_has_participant {
            return Err(UnlearnError::EmptyMembershipWindow {
                start_round: f_round,
                end_round: t_end,
            });
        }

        fuiov_obs::journal::begin("core.recover", f_round as u64);
        let mut oracle_queries = 0usize;
        let mut buffers: BTreeMap<ClientId, PairBuffer> = BTreeMap::new();
        let mut approxes: BTreeMap<ClientId, LbfgsApprox> = BTreeMap::new();

        // ---- Seed vector pairs from the s rounds before F (§IV-B). ----
        let seed_start = f_round.saturating_sub(config.buffer_size);
        // Hold the historical models through their tier guard on the
        // common path (a hot round stays borrowed, a spilled one is pinned
        // in the decode cache); only a model that
        // `interpolate_missing_models` has to synthesise is ever owned.
        let w_f = history
            .model(f_round)
            .ok_or(UnlearnError::MissingModel(f_round))?;
        for &client in &remaining {
            // Sibling subtrees replay verbatim: no pairs, no approximation.
            if scope
                .as_ref()
                .is_some_and(|s| s.binary_search(&client).is_err())
            {
                continue;
            }
            let mut buf = PairBuffer::new(config.buffer_size);
            // Base gradient g_F: stored direction at F, or oracle, or
            // nearest later round's direction.
            let g_f =
                direction_or_oracle(history, client, f_round, &w_f, oracle, &mut oracle_queries)
                    .or_else(|| nearest_direction(history, client, f_round, t_end));
            if let Some(g_f) = g_f {
                for r in seed_start..f_round {
                    let guard = history.model(r);
                    let interp;
                    let w_r: &[f32] = match guard.as_deref() {
                        Some(m) => m,
                        None if config.interpolate_missing_models => {
                            match history.model_interpolated(r) {
                                Some(m) => {
                                    interp = m;
                                    &interp
                                }
                                None => continue,
                            }
                        }
                        None => continue,
                    };
                    let g_r =
                        direction_or_oracle(history, client, r, w_r, oracle, &mut oracle_queries);
                    let Some(g_r) = g_r else { continue };
                    let dw = vector::sub(w_r, &w_f);
                    let dg = vector::sub(&g_r, &g_f);
                    buf.push(dw, dg);
                }
            }
            if let Ok(approx) = buf.approximation() {
                approxes.insert(client, approx);
            }
            buffers.insert(client, buf);
        }

        let dim = params.len();
        Ok(ReplayState {
            config: *config,
            forgotten: forgotten.to_vec(),
            f_round,
            t_end,
            next_round: f_round,
            params,
            remaining,
            scope,
            buffers,
            approxes,
            prev_dw_norm: 0.0,
            growth_run: 0,
            estimator_fallbacks: 0,
            sibling_reuses: 0,
            oracle_queries,
            update_norms: Vec::with_capacity(t_end - f_round),
            stacked: StackedLbfgs::build(dim, std::iter::empty()),
            stacked_dirty: config.hessian_correction,
            roster: Vec::new(),
            weights: Vec::new(),
        })
    }

    /// Whether every round in `F..T` has been replayed.
    pub(crate) fn is_done(&self) -> bool {
        self.next_round >= self.t_end
    }

    /// Pre-computes this round's shared vector `w̄ₜ − wₜ` into
    /// `scratch.dw_t` and (if a pair refresh dirtied it) rebuilds the
    /// stack — the inputs a *cross-job* fused sweep needs before
    /// [`ReplayState::step`] runs with externally-computed dots. Pure with
    /// respect to the replay arithmetic: `step` recomputes `dw_t` from the
    /// identical inputs and sees the stack already clean, so calling this
    /// first moves no bit of the recovered model.
    ///
    /// Returns whether the round wants a Hessian sweep at all (correction
    /// enabled and a non-empty stack).
    ///
    /// # Errors
    ///
    /// [`UnlearnError::MissingModel`] as in [`ReplayState::step`].
    pub(crate) fn prepare_sweep(
        &mut self,
        history: &HistoryStore,
        scratch: &mut RoundScratch,
    ) -> Result<bool, UnlearnError> {
        let t = self.next_round;
        debug_assert!(t < self.t_end, "prepare_sweep on an exhausted state");
        let view = history.round_view(t);
        let w_t: Cow<'_, [f32]> = match view.model() {
            Some(m) => Cow::Borrowed(m),
            None if self.config.interpolate_missing_models => history
                .model_interpolated(t)
                .map(Cow::Owned)
                .ok_or(UnlearnError::MissingModel(t))?,
            None => return Err(UnlearnError::MissingModel(t)),
        };
        vector::sub_into_aligned(&self.params, &w_t, &mut scratch.dw_t);
        if self.config.hessian_correction && self.stacked_dirty {
            self.stacked = StackedLbfgs::build(
                self.params.len(),
                self.approxes.iter().map(|(c, a)| (*c, a)),
            );
            self.stacked_dirty = false;
            fuiov_obs::counter!("core.stack_rebuilds").inc();
        }
        Ok(self.config.hessian_correction && !self.stacked.is_empty())
    }

    /// Replays exactly one round (`next_round`), advancing the state.
    ///
    /// `dots_override` injects the per-column dots of this state's stack
    /// against this round's `w̄ₜ − wₜ` when a cross-job sweep already
    /// computed them ([`crate::batch::fused_dots_multi`]); `None` runs the
    /// per-state fused sweep, which is the one-shot [`recover_set`] path.
    ///
    /// # Errors
    ///
    /// [`UnlearnError::MissingModel`] if the round's model is gone and
    /// interpolation is off.
    pub(crate) fn step(
        &mut self,
        history: &HistoryStore,
        scratch: &mut RoundScratch,
        dots_override: Option<&[f32]>,
        on_round: &mut dyn FnMut(Round, &[f32]),
    ) -> Result<(), UnlearnError> {
        let t = self.next_round;
        debug_assert!(t < self.t_end, "step on an exhausted state");
        let config = self.config;
        let dim = self.params.len();

        // Snapshot the round once: packed direction words and the model
        // stay pinned behind the view (hot rounds borrow, spilled rounds
        // decode once into the LRU) and stream straight into the LUT
        // kernels below — no intermediate `Vec<f32>` per client.
        let view = history.round_view(t);
        // Warm the decode cache for the next replay round while this one
        // computes, so a cold (spilled) trajectory pays its segment read
        // off the critical path of round t+1.
        if t + 1 < self.t_end {
            history.prefetch(t + 1);
        }
        let w_t: Cow<'_, [f32]> = match view.model() {
            Some(m) => Cow::Borrowed(m),
            None if config.interpolate_missing_models => history
                .model_interpolated(t)
                .map(Cow::Owned)
                .ok_or(UnlearnError::MissingModel(t))?,
            None => return Err(UnlearnError::MissingModel(t)),
        };
        vector::sub_into_aligned(&self.params, &w_t, &mut scratch.dw_t); // w̄_t − w_t

        if config.hessian_correction && self.stacked_dirty {
            self.stacked = StackedLbfgs::build(dim, self.approxes.iter().map(|(c, a)| (*c, a)));
            self.stacked_dirty = false;
            fuiov_obs::counter!("core.stack_rebuilds").inc();
        }

        // Round roster in fixed `remaining` (ascending client) order — the
        // aggregation below consumes estimate rows in exactly this order,
        // so the recovered model is bitwise identical at any pool width
        // (DESIGN.md §5).
        self.roster.clear();
        self.weights.clear();
        for &client in &self.remaining {
            // Not in the view = client did not participate in round t.
            if view.direction(client).is_none() {
                continue;
            }
            // Out-of-scope (sibling subtree): its sealed aggregate is
            // exactly unchanged by the forget — replay the stored
            // direction raw, which is a reuse, not an estimator fallback.
            if self
                .scope
                .as_ref()
                .is_some_and(|s| s.binary_search(&client).is_err())
            {
                self.sibling_reuses += 1;
                fuiov_obs::counter!("hierarchy.sibling_aggregates_reused").inc();
                self.roster.push((client, None));
                self.weights.push(history.weight(client));
                continue;
            }
            let entry = config
                .hessian_correction
                .then(|| self.stacked.entry_for(client))
                .flatten();
            if config.hessian_correction && entry.is_none() {
                self.estimator_fallbacks += 1;
                fuiov_obs::counter!("core.estimator_fallbacks").inc();
            }
            self.roster.push((client, entry));
            self.weights.push(history.weight(client));
        }
        let n_part = self.roster.len();

        if n_part == 0 {
            self.update_norms.push(0.0);
        } else {
            // Passes 1+2 of the batched round: one fused column-dot sweep
            // of dw_t over the whole stack (or the cross-job sweep's slice
            // of the very same dots), then every client's tiny middle
            // solve against its slice.
            if config.hessian_correction && !self.stacked.is_empty() {
                let dots: &[f32] = match dots_override {
                    Some(d) => d,
                    None => {
                        fuiov_obs::counter!("core.hvp_fused_sweeps").inc();
                        self.stacked.fused_dots(&scratch.dw_t, &mut scratch.dots);
                        &scratch.dots
                    }
                };
                self.stacked
                    .solve_middles(dots, &mut scratch.ps, &mut scratch.rhs, &mut scratch.p);
            }

            // Pass 3: decode + correction + clip straight into each
            // client's row of the flat estimate matrix. Rows are disjoint
            // and each is computed element-for-element like the per-client
            // path, so any banding keeps the result bitwise identical.
            scratch.est.resize(n_part * dim, 0.0);
            let est_buf = &mut scratch.est[..n_part * dim];
            let (stacked_ref, dw_t, ps) = (&self.stacked, &scratch.dw_t, &scratch.ps);
            let (roster_ref, view_ref) = (&self.roster, &view);
            // Hoisted so the disabled path adds nothing inside the bands;
            // when enabled, the extra norm reads are pure observation — the
            // clipped rows are bitwise unchanged.
            let obs_on = fuiov_obs::enabled();
            pool::par_row_bands_weighted(est_buf, n_part, dim, dim, |rows, band| {
                for (row, p) in band.chunks_mut(dim).zip(rows) {
                    let (client, entry) = roster_ref[p];
                    let dir = view_ref.direction(client).expect("roster checked");
                    dir.decode_into(row);
                    if let Some(e) = entry {
                        stacked_ref.accumulate_correction(e, ps, dw_t, row);
                    }
                    if obs_on {
                        let pre = vector::l2_norm(row);
                        vector::clip_elementwise(row, config.clip_threshold);
                        let post = vector::l2_norm(row);
                        fuiov_obs::histogram!("core.clip_pre_norm_micros")
                            .observe_scaled(pre as f64);
                        fuiov_obs::histogram!("core.clip_post_norm_micros")
                            .observe_scaled(post as f64);
                        if post.to_bits() != pre.to_bits() {
                            fuiov_obs::counter!("core.clip_activations").inc();
                        }
                    } else {
                        vector::clip_elementwise(row, config.clip_threshold);
                    }
                }
            });

            let refs: Vec<&[f32]> = est_buf.chunks(dim).collect();
            let agg = aggregate_refs(config.aggregation, &refs, &self.weights);
            vector::axpy(-config.lr, &agg, &mut self.params);
            self.update_norms.push(vector::l2_norm(&agg));
        }

        // ---- Vector-pair refresh: periodic, plus the §IV-B adaptive
        // trigger when the recovered trajectory keeps drifting away from
        // the historical one. ----
        let dw_norm = vector::l2_norm(&scratch.dw_t);
        if dw_norm > self.prev_dw_norm {
            self.growth_run += 1;
        } else {
            self.growth_run = 0;
        }
        self.prev_dw_norm = dw_norm;
        let diverging = config
            .divergence_patience
            .is_some_and(|patience| self.growth_run >= patience);
        let replayed = t - self.f_round + 1;
        if (replayed.is_multiple_of(config.pair_refresh_interval) || diverging) && dw_norm > 1e-12 {
            if diverging {
                self.growth_run = 0;
            }
            // The clipped estimates live as rows of the scratch estimate
            // matrix (aligned with `roster`), so refreshing needs no
            // per-round clones: pairs are pushed from borrowed slices and
            // the ring buffer recycles its evicted storage.
            for (p, (client, _)) in self.roster.iter().enumerate() {
                // Sibling replays carry no recovered information to learn
                // from (their estimate IS the stored direction).
                if self
                    .scope
                    .as_ref()
                    .is_some_and(|s| s.binary_search(client).is_err())
                {
                    continue;
                }
                let est = &scratch.est[p * dim..(p + 1) * dim];
                scratch.stored.resize(dim, 0.0);
                let dir = view.direction(*client).expect("roster checked");
                dir.decode_into(&mut scratch.stored);
                vector::sub_into(est, &scratch.stored, &mut scratch.dg);
                if vector::l2_norm(&scratch.dg) <= 1e-12 {
                    continue; // clipped estimate identical to history: no info
                }
                let buf = self
                    .buffers
                    .entry(*client)
                    .or_insert_with(|| PairBuffer::new(config.buffer_size));
                buf.push_from_slices(&scratch.dw_t, &scratch.dg);
                fuiov_obs::counter!("core.pair_refreshes").inc();
                if let Ok(approx) = buf.approximation() {
                    self.approxes.insert(*client, approx);
                    self.stacked_dirty = true;
                }
                // On failure keep the previous approximation.
            }
        }

        fuiov_obs::counter!("core.replay_rounds").inc();
        fuiov_obs::journal::instant("core.recover.round", t as u64, n_part as u64);
        on_round(t, &self.params);
        self.next_round = t + 1;
        Ok(())
    }

    /// Consumes the exhausted state into its [`RecoveryOutcome`].
    pub(crate) fn finish(self) -> RecoveryOutcome {
        fuiov_obs::journal::end(
            "core.recover",
            self.f_round as u64,
            (self.t_end - self.f_round) as u64,
        );
        RecoveryOutcome {
            params: self.params,
            clients: self.forgotten,
            start_round: self.f_round,
            end_round: self.t_end,
            rounds_replayed: self.t_end - self.f_round,
            estimator_fallbacks: self.estimator_fallbacks,
            oracle_queries: self.oracle_queries,
            sibling_reuses: self.sibling_reuses,
            update_norms: self.update_norms,
        }
    }
}

/// Stored direction for `(round, client)`, else a quantised oracle
/// gradient at the dispatched historical model.
fn direction_or_oracle(
    history: &HistoryStore,
    client: ClientId,
    round: Round,
    model: &[f32],
    oracle: &mut dyn GradientOracle,
    oracle_queries: &mut usize,
) -> Option<Vec<f32>> {
    if let Some(dir) = history.direction(round, client) {
        return Some(dir.to_f32());
    }
    let grad = oracle.gradient_at(client, model)?;
    *oracle_queries += 1;
    fuiov_obs::counter!("core.oracle_queries").inc();
    Some(vector::signs_to_f32(&vector::sign_with_threshold(
        &grad,
        history.delta(),
    )))
}

/// The client's direction from the round nearest to `from` in
/// `[from, until]` (used when the client had not yet joined at `F`).
fn nearest_direction(
    history: &HistoryStore,
    client: ClientId,
    from: Round,
    until: Round,
) -> Option<Vec<f32>> {
    (from..=until).find_map(|r| history.direction(r, client).map(|d| d.to_f32()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic history of a linear optimisation:
    /// clients pull the model toward distinct targets.
    fn synthetic_history(rounds: usize, clients: usize, forgotten: ClientId) -> HistoryStore {
        let dim = 6;
        let lr = 0.05f32;
        let mut h = HistoryStore::new(1e-6);
        let mut w = vec![0.0f32; dim];
        for c in 0..clients {
            h.record_join(c, if c == forgotten { 2 } else { 0 });
            h.set_weight(c, 10.0);
        }
        for t in 0..rounds {
            h.record_model(t, w.clone());
            let mut grads = Vec::new();
            for c in 0..clients {
                if c == forgotten && t < 2 {
                    continue;
                }
                // Gradient of ½‖w − target_c‖²  with target depending on c.
                let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32 - 1.0).collect();
                let g = vector::sub(&w, &target);
                h.record_gradient(t, c, &g);
                grads.push(g);
            }
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let weights = vec![10.0f32; refs.len()];
            let agg = vector::weighted_mean(&refs, &weights);
            vector::axpy(-lr, &agg, &mut w);
        }
        h.record_model(rounds, w);
        h
    }

    #[test]
    fn recovery_runs_and_reports_shape() {
        let h = synthetic_history(30, 4, 1);
        let cfg = RecoveryConfig::new(0.05);
        let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert_eq!(out.start_round, 2);
        assert_eq!(out.end_round, 30);
        assert_eq!(out.rounds_replayed, 28);
        assert_eq!(out.update_norms.len(), 28);
        assert_eq!(out.params.len(), 6);
        assert!(out.update_norms.iter().all(|&n| n.is_finite()));
    }

    #[test]
    fn parallel_and_serial_recovery_give_identical_models() {
        // Golden determinism: per-client estimation fans out over the pool
        // but aggregates in fixed client order, so the recovered model must
        // be bitwise identical at every thread count (DESIGN.md §5).
        let h = synthetic_history(30, 6, 1);
        let cfg = RecoveryConfig::new(0.05).pair_refresh_interval(5);
        let run = |threads: usize| {
            fuiov_tensor::pool::set_threads(threads);
            let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
            fuiov_tensor::pool::set_threads(0);
            (
                out.params.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                out.estimator_fallbacks,
                out.update_norms
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u32>>(),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(3), "3-thread recovery diverged from serial");
        assert_eq!(serial, run(8), "8-thread recovery diverged from serial");
    }

    #[test]
    fn recovered_model_moves_from_backtrack_point() {
        let h = synthetic_history(30, 4, 1);
        let cfg = RecoveryConfig::new(0.05);
        let backtracked = h.model(2).unwrap().to_vec();
        let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert!(vector::l2_distance(&out.params, &backtracked) > 1e-3);
    }

    #[test]
    fn on_round_sees_every_replayed_round() {
        let h = synthetic_history(10, 3, 2);
        let cfg = RecoveryConfig::new(0.05).pair_refresh_interval(3);
        let mut seen = Vec::new();
        recover(&h, 2, &cfg, &mut NoOracle, |t, _| seen.push(t)).unwrap();
        assert_eq!(seen, (2..10).collect::<Vec<_>>());
    }

    #[test]
    fn forgotten_client_round_zero_has_no_prefix_pairs() {
        // Forgotten client joined at 0 → backtrack to w_0, no pre-F
        // history → all estimations fall back to raw directions, but
        // recovery still completes.
        let h = synthetic_history(8, 3, 0);
        // Rewrite join round of client 0 to 0 (synthetic_history gives 2).
        let cfg = RecoveryConfig::new(0.05);
        let out = recover(&h, 0, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert_eq!(out.start_round, 2); // synthetic_history pins join=2
        assert!(out.params.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nothing_to_recover_when_join_equals_latest() {
        let mut h = HistoryStore::new(0.0);
        h.record_model(0, vec![0.0]);
        h.record_model(5, vec![1.0]);
        h.record_join(1, 5);
        let cfg = RecoveryConfig::new(0.1);
        let err = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap_err();
        assert!(matches!(err, UnlearnError::NothingToRecover { .. }));
    }

    #[test]
    fn empty_membership_window_is_a_typed_error() {
        // Client 0 participates only in rounds 0..2 and leaves; the
        // forgotten client 1 joins at F=2. The replay window 2..5 has no
        // remaining participant, so recovery must refuse with the typed
        // error rather than replaying zero updates (or panicking).
        let mut h = HistoryStore::new(1e-6);
        for t in 0..=5 {
            h.record_model(t, vec![t as f32; 4]);
        }
        h.record_join(0, 0);
        h.record_join(1, 2);
        for t in 0..2 {
            h.record_gradient(t, 0, &[0.5, -0.5, 0.5, -0.5]);
        }
        for t in 2..5 {
            h.record_gradient(t, 1, &[0.5, -0.5, 0.5, -0.5]);
        }
        h.record_leave(0, 1);
        let cfg = RecoveryConfig::new(0.05);
        let err = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap_err();
        assert_eq!(
            err,
            UnlearnError::EmptyMembershipWindow {
                start_round: 2,
                end_round: 5
            }
        );
    }

    #[test]
    fn forgetting_every_client_is_a_typed_error() {
        // Forgetting the whole federation leaves nobody to replay.
        let h = synthetic_history(10, 3, 1);
        let cfg = RecoveryConfig::new(0.05);
        let err = recover_set(&h, &[0, 1, 2], &cfg, &mut NoOracle, |_, _| {}).unwrap_err();
        assert!(matches!(err, UnlearnError::EmptyMembershipWindow { .. }));
    }

    #[test]
    fn missing_replay_model_is_reported() {
        let mut h = HistoryStore::new(0.0);
        h.record_model(0, vec![0.0, 0.0]);
        h.record_model(3, vec![1.0, 1.0]);
        h.record_join(0, 0);
        h.record_join(1, 0);
        h.record_gradient(0, 0, &[1.0, -1.0]);
        h.record_gradient(0, 1, &[1.0, -1.0]);
        // Models for rounds 1,2 missing.
        let cfg = RecoveryConfig::new(0.1);
        let err = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap_err();
        assert_eq!(err, UnlearnError::MissingModel(1));
    }

    #[test]
    fn clipping_bounds_every_update() {
        let h = synthetic_history(20, 4, 1);
        // Tiny clip threshold: aggregated update norm per round is at most
        // sqrt(dim)·L since every element of every estimate is in [−L, L].
        let l = 0.01f32;
        let cfg = RecoveryConfig::new(1.0).clip_threshold(l);
        let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        let bound = (6.0f32).sqrt() * l + 1e-6;
        assert!(
            out.update_norms.iter().all(|&n| n <= bound),
            "norms {:?}",
            out.update_norms
        );
    }

    struct CountingOracle(usize);

    impl GradientOracle for CountingOracle {
        fn gradient_at(&mut self, _c: ClientId, params: &[f32]) -> Option<Vec<f32>> {
            self.0 += 1;
            Some(vec![0.1; params.len()])
        }
    }

    #[test]
    fn oracle_fills_missing_seed_gradients() {
        // Client 3 joins at round 4 (> F=2), so it has no gradients in the
        // seed window; the oracle should be consulted.
        let dim = 4;
        let mut h = HistoryStore::new(1e-6);
        let mut w = vec![0.0f32; dim];
        for t in 0..10 {
            h.record_model(t, w.clone());
            for c in 0..4usize {
                let joined = match c {
                    1 => 2, // forgotten
                    3 => 4, // late joiner
                    _ => 0,
                };
                if t < joined {
                    continue;
                }
                h.record_join(c, joined);
                let g: Vec<f32> = (0..dim).map(|j| 0.1 * (c + j + t) as f32 - 0.2).collect();
                h.record_gradient(t, c, &g);
            }
            w[0] -= 0.01;
        }
        h.record_model(10, w);

        let cfg = RecoveryConfig::new(0.05);
        let mut oracle = CountingOracle(0);
        let out = recover(&h, 1, &cfg, &mut oracle, |_, _| {}).unwrap();
        assert!(out.oracle_queries > 0, "oracle should have been consulted");
        assert_eq!(out.oracle_queries, oracle.0);
    }

    #[test]
    fn no_oracle_still_succeeds_for_late_joiners() {
        // Same setup, but with NoOracle: the late joiner must fall back to
        // its nearest later direction and recovery still completes.
        let dim = 4;
        let mut h = HistoryStore::new(1e-6);
        let w = vec![0.0f32; dim];
        for t in 0..8 {
            h.record_model(t, w.clone());
            for c in 0..4usize {
                let joined = match c {
                    1 => 2,
                    3 => 4,
                    _ => 0,
                };
                if t < joined {
                    continue;
                }
                h.record_join(c, joined);
                h.record_gradient(t, c, &[0.5, -0.5, 0.25, -0.25]);
            }
        }
        h.record_model(8, w);
        let cfg = RecoveryConfig::new(0.05);
        let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert!(out.params.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn divergence_trigger_refreshes_early() {
        // With patience 1 the trigger fires as soon as ‖w̄−w‖ grows twice,
        // well before the periodic interval (set huge here). The run must
        // still complete and stay finite.
        let h = synthetic_history(30, 4, 1);
        let cfg = RecoveryConfig::new(0.05)
            .pair_refresh_interval(10_000)
            .divergence_patience(Some(1));
        let out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert!(out.params.iter().all(|v| v.is_finite()));

        // Disabled trigger with a huge interval means pairs never refresh;
        // both paths must produce the same round count.
        let cfg_off = RecoveryConfig::new(0.05)
            .pair_refresh_interval(10_000)
            .divergence_patience(None);
        let out_off = recover(&h, 1, &cfg_off, &mut NoOracle, |_, _| {}).unwrap();
        assert_eq!(out.rounds_replayed, out_off.rounds_replayed);
    }

    #[test]
    fn interpolated_recovery_approximates_full_history() {
        let h = synthetic_history(30, 4, 1);
        let thin = h.thinned_models(3);
        assert!(thin.rounds().len() < h.rounds().len());
        let cfg = RecoveryConfig::new(0.05);

        // Without interpolation, thinned history fails.
        let err = recover(&thin, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap_err();
        assert!(matches!(err, UnlearnError::MissingModel(_)));

        // With interpolation it completes and lands near the full-history
        // recovery.
        let cfg_interp = cfg.interpolate_missing_models(true);
        let thin_out = recover(&thin, 1, &cfg_interp, &mut NoOracle, |_, _| {}).unwrap();
        let full_out = recover(&h, 1, &cfg, &mut NoOracle, |_, _| {}).unwrap();
        let dist = vector::l2_distance(&thin_out.params, &full_out.params);
        let scale = vector::l2_norm(&full_out.params).max(1.0);
        assert!(
            dist / scale < 0.5,
            "interpolated recovery drifted: {dist} (relative {})",
            dist / scale
        );
        // And it must beat simply stopping at the backtrack point.
        let bt = crate::backtrack::backtrack(&h, 1).unwrap();
        let bt_dist = vector::l2_distance(&bt.params, &full_out.params);
        assert!(
            dist < bt_dist,
            "interpolation should improve on no recovery"
        );
    }

    #[test]
    fn calibrate_lr_recovers_known_step_ratio() {
        // History where each round moves every weight by exactly 0.01 and
        // every stored sign element is ±1 from a single client: the
        // calibrated lr must be ≈ 0.01.
        let dim = 8;
        let mut h = HistoryStore::new(0.0);
        h.record_join(0, 0);
        for t in 0..5usize {
            h.record_model(t, vec![0.01 * t as f32; dim]);
            h.record_gradient(t, 0, &vec![-1.0; dim]);
        }
        h.record_model(5, vec![0.05; dim]);
        let lr = calibrate_lr(&h).unwrap();
        assert!((lr - 0.01).abs() < 1e-4, "calibrated {lr}");
    }

    #[test]
    fn calibrate_lr_matches_scalar_sign_accumulation_bitwise() {
        // The LUT-fused `decode_axpy` in the weighted accumulation must
        // reproduce the scalar per-element `to_signs()` loop it replaced,
        // down to the final bit of the calibrated rate.
        let h = synthetic_history(25, 5, 1);
        let lr = calibrate_lr(&h).expect("history is calibratable");

        // Scalar reimplementation of the pre-LUT path.
        let rounds = h.rounds();
        let mut step_sum = 0.0f64;
        let mut dir_sum = 0.0f64;
        let mut samples = 0usize;
        for win in rounds.windows(2) {
            let (a, b) = (win[0], win[1]);
            let (Some(wa), Some(wb)) = (h.model(a), h.model(b)) else {
                continue;
            };
            let clients = h.clients_in_round(a);
            if clients.is_empty() {
                continue;
            }
            let dim = wa.len();
            let mut agg = vec![0.0f64; dim];
            let mut wsum = 0.0f64;
            for c in clients {
                let Some(dir) = h.direction(a, c) else {
                    continue;
                };
                let w = f64::from(h.weight(c));
                wsum += w;
                for (acc, s) in agg.iter_mut().zip(dir.to_signs()) {
                    *acc += w * f64::from(s);
                }
            }
            if wsum == 0.0 {
                continue;
            }
            let step: f64 = wa
                .iter()
                .zip(wb.iter())
                .map(|(x, y)| (f64::from(*x) - f64::from(*y)).abs())
                .sum::<f64>()
                / dim as f64;
            let dir_mag: f64 = agg.iter().map(|v| (v / wsum).abs()).sum::<f64>() / dim as f64;
            if dir_mag > 0.0 && step > 0.0 {
                step_sum += step;
                dir_sum += dir_mag;
                samples += 1;
            }
        }
        assert!(samples > 0);
        let expected = (step_sum / dir_sum) as f32;
        assert_eq!(
            lr.to_bits(),
            expected.to_bits(),
            "lr {lr} vs scalar {expected}"
        );
    }

    #[test]
    fn calibrate_lr_requires_history() {
        let h = HistoryStore::new(0.0);
        assert!(calibrate_lr(&h).is_none());
        let mut h2 = HistoryStore::new(0.0);
        h2.record_model(0, vec![0.0; 2]);
        h2.record_model(1, vec![0.1; 2]);
        // No directions recorded → None.
        assert!(calibrate_lr(&h2).is_none());
    }

    #[test]
    fn config_builders_validate() {
        let cfg = RecoveryConfig::new(0.1)
            .clip_threshold(2.0)
            .buffer_size(3)
            .pair_refresh_interval(5)
            .aggregation(AggregationRule::CoordinateMedian);
        assert_eq!(cfg.buffer_size, 3);
        assert_eq!(cfg.pair_refresh_interval, 5);
        assert_eq!(cfg.clip_threshold, 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid clip threshold")]
    fn config_rejects_bad_clip() {
        let _ = RecoveryConfig::new(0.1).clip_threshold(0.0);
    }

    #[test]
    fn full_scope_replay_is_bitwise_unscoped() {
        let h = synthetic_history(10, 4, 1);
        let cfg = RecoveryConfig::new(0.05);
        let unscoped = recover_set(&h, &[1], &cfg, &mut NoOracle, |_, _| {}).unwrap();
        // Scope covering every remaining client estimates exactly the
        // same set as no scope at all.
        let everyone: Vec<ClientId> = vec![0, 2, 3];
        let scoped =
            recover_set_scoped(&h, &[1], Some(&everyone), &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert_eq!(scoped.sibling_reuses, 0);
        assert_eq!(scoped.estimator_fallbacks, unscoped.estimator_fallbacks);
        let a: Vec<u32> = unscoped.params.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = scoped.params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "full scope must be bitwise identical to unscoped");
    }

    #[test]
    fn narrow_scope_reuses_sibling_directions() {
        let rounds = 10;
        let clients = 5;
        let h = synthetic_history(rounds, clients, 1);
        let cfg = RecoveryConfig::new(0.05);
        // Only client 0 shares the forgotten vehicle's leaf; clients 2..5
        // are sibling subtrees whose sealed directions replay verbatim.
        let scoped =
            recover_set_scoped(&h, &[1], Some(&[0]), &cfg, &mut NoOracle, |_, _| {}).unwrap();
        // Forgotten client joined at round 2, so replay covers rounds
        // 2..rounds; every replayed round reuses the 3 out-of-scope
        // clients' directions.
        let replayed = rounds - 2;
        assert_eq!(scoped.rounds_replayed, replayed);
        assert_eq!(scoped.sibling_reuses, 3 * replayed);
        assert!(scoped.params.iter().all(|x| x.is_finite()));

        // An empty scope reuses everyone — pure sealed-direction replay.
        let sealed =
            recover_set_scoped(&h, &[1], Some(&[]), &cfg, &mut NoOracle, |_, _| {}).unwrap();
        assert_eq!(sealed.sibling_reuses, 4 * replayed);
        assert_eq!(sealed.estimator_fallbacks, 0);
        assert!(sealed.params.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn scope_order_and_duplicates_do_not_matter() {
        let h = synthetic_history(8, 4, 0);
        let cfg = RecoveryConfig::new(0.05);
        let a =
            recover_set_scoped(&h, &[0], Some(&[3, 2]), &cfg, &mut NoOracle, |_, _| {}).unwrap();
        let b =
            recover_set_scoped(&h, &[0], Some(&[2, 3, 2]), &cfg, &mut NoOracle, |_, _| {}).unwrap();
        let pa: Vec<u32> = a.params.iter().map(|x| x.to_bits()).collect();
        let pb: Vec<u32> = b.params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(pa, pb);
        assert_eq!(a.sibling_reuses, b.sibling_reuses);
    }
}
