//! Resumable concurrent unlearning job service.
//!
//! A deployment serves *many* forget requests, not one: vehicles leave in
//! bursts, their membership windows overlap, and the server may be
//! preempted or crash mid-replay. This module turns the one-shot
//! [`recover_set`](crate::recover_set) pipeline into a job queue with
//! three guarantees:
//!
//! 1. **Snapshot isolation** — each job captures
//!    [`HistoryStore::snapshot`] at submission, a copy-on-write clone
//!    (`Arc`'d round slots + shared spill file), so training rounds
//!    appended afterwards never shift a running job's replay window.
//! 2. **Crash-safe resume** — every `checkpoint_interval` replayed rounds
//!    the job's full [`ReplayState`] is serialised and sealed into an
//!    FNV-framed [`RecordKind::JobCheckpoint`] segment record
//!    ([`JobLog`]). A crashed, preempted, or restarted job resumes from
//!    its newest decodable checkpoint, and the resumed model is **bitwise
//!    identical** to the uninterrupted run: the codec round-trips every
//!    arithmetic-relevant bit (`f32` payloads travel as raw bits, L-BFGS
//!    approximations are rebuilt from their exact factor columns, and the
//!    rebuilt stack must reproduce the sealed
//!    [`StackedLbfgs::fingerprint`]).
//! 3. **Cross-job batched replay** — jobs replaying the same round share
//!    one fused inbound sweep ([`fused_dots_multi`]): the concatenation of
//!    their stacks is dotted against their per-job `w̄ₜ − wₜ` vectors in a
//!    single parallel row-band pass, and each job's middle solves consume
//!    its slice unchanged. Per-column purity makes the batched sweep
//!    bit-for-bit the per-job sweep (see `crates/core/src/batch.rs`), so
//!    concurrency is an optimisation, never a semantic.
//!
//! Determinism boundary: everything a future round's arithmetic can
//! observe lives in [`ReplayState`] and is checkpointed; scratch arenas,
//! caches, and schedules are reconstructed and provably don't move bits
//! (DESIGN.md §5 "Recovery job service").
//!
//! [`RecordKind::JobCheckpoint`]: fuiov_storage::segment::RecordKind

use crate::batch::{fused_dots_multi, RoundScratch, StackedLbfgs};
use crate::error::UnlearnError;
use crate::lbfgs::{LbfgsApprox, PairBuffer};
use crate::recover::{GradientOracle, RecoveryConfig, RecoveryOutcome, ReplayState};
use fuiov_storage::segment::{self, SegmentDecodeError};
use fuiov_storage::{ClientId, HistoryStore, Round};
use fuiov_tensor::simd::AVec;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one submitted unlearning job for its whole life, including
/// across process restarts (ids are recovered from the job log).
pub type JobId = u64;

/// One valid record recovered from a [`JobLog`]: the job it belongs to,
/// the round the job will replay next, and the sealed state payload.
pub type LoggedCheckpoint = (JobId, Round, Vec<u8>);

/// Version tag leading every checkpoint payload; bump on layout change.
/// v2 appended the replay scope and sibling-reuse tally at the payload
/// tail (so [`peek_forgotten`]'s fixed header offsets survived).
const STATE_VERSION: u16 = 2;

/// Default rounds between sealed checkpoints when
/// `FUIOV_JOB_CHECKPOINT_INTERVAL` is unset.
const DEFAULT_CHECKPOINT_INTERVAL: usize = 4;

static LOG_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Knobs of the job service, layered over the per-job [`RecoveryConfig`].
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Replay configuration shared by every job (the resume contract
    /// requires resuming under the same configuration that sealed the
    /// checkpoint).
    pub recovery: RecoveryConfig,
    /// Replayed rounds between sealed checkpoints (≥ 1). Seeded from
    /// `FUIOV_JOB_CHECKPOINT_INTERVAL` by [`JobConfig::new`].
    pub checkpoint_interval: usize,
    /// Whether jobs sharing a replay round share one fused inbound sweep.
    /// Off forces the per-job sweep; outputs are bitwise identical either
    /// way (the differential oracles assert it).
    pub cross_job_batching: bool,
}

impl JobConfig {
    /// A config with the checkpoint interval taken from
    /// `FUIOV_JOB_CHECKPOINT_INTERVAL` (default 4) and cross-job batching
    /// on.
    pub fn new(recovery: RecoveryConfig) -> Self {
        JobConfig {
            recovery,
            checkpoint_interval: parse_checkpoint_interval(
                std::env::var("FUIOV_JOB_CHECKPOINT_INTERVAL")
                    .ok()
                    .as_deref(),
            ),
            cross_job_batching: true,
        }
    }

    /// Overrides the checkpoint interval (clamped to ≥ 1).
    pub fn checkpoint_interval(mut self, rounds: usize) -> Self {
        self.checkpoint_interval = rounds.max(1);
        self
    }

    /// Enables or disables cross-job batched replay.
    pub fn cross_job_batching(mut self, on: bool) -> Self {
        self.cross_job_batching = on;
        self
    }
}

/// Parses a `FUIOV_JOB_CHECKPOINT_INTERVAL` value: a positive integer
/// round count; anything unset, unparsable, or zero falls back to the
/// default (4). Pure, so tests cover it without touching the process
/// environment.
pub fn parse_checkpoint_interval(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHECKPOINT_INTERVAL)
}

// ---------------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u32(out, xs.len() as u32);
    for x in xs {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[ClientId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u64(out, id as u64);
    }
}

/// Byte-slice reader: every read is bounds-checked into a typed
/// [`UnlearnError::BadJobCheckpoint`] so a short (but FNV-clean) payload
/// can never panic the service.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], UnlearnError> {
        if self.buf.len() < n {
            return Err(UnlearnError::BadJobCheckpoint("truncated payload"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, UnlearnError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, UnlearnError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, UnlearnError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, UnlearnError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32s_exact(&mut self, n: usize, out: &mut Vec<f32>) -> Result<(), UnlearnError> {
        out.clear();
        out.reserve(n);
        let bytes = self.take(n * 4)?;
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_bits(u32::from_le_bytes(
                chunk.try_into().expect("4 bytes"),
            )));
        }
        Ok(())
    }

    fn f32s(&mut self) -> Result<Vec<f32>, UnlearnError> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        self.f32s_exact(n, &mut out)?;
        Ok(out)
    }

    fn ids(&mut self) -> Result<Vec<ClientId>, UnlearnError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(self.buf.len() / 8));
        for _ in 0..n {
            out.push(self.u64()? as ClientId);
        }
        Ok(out)
    }
}

/// Serialises everything a future round's arithmetic can observe. The
/// sealed stack fingerprint is of the state's *current* stack, so callers
/// flush a dirty stack (rebuild it) before encoding — [`JobService`] does.
fn encode_state(state: &ReplayState) -> Vec<u8> {
    let dim = state.params.len();
    let mut out = Vec::with_capacity(64 + dim * 4);
    out.extend_from_slice(&STATE_VERSION.to_le_bytes());
    put_u64(&mut out, state.f_round as u64);
    put_u64(&mut out, state.t_end as u64);
    put_u64(&mut out, state.next_round as u64);
    put_u64(&mut out, state.estimator_fallbacks as u64);
    put_u64(&mut out, state.oracle_queries as u64);
    put_u32(&mut out, state.prev_dw_norm.to_bits());
    put_u64(&mut out, state.growth_run as u64);
    out.push(u8::from(state.stacked_dirty));
    put_u64(&mut out, state.stacked.fingerprint());
    put_ids(&mut out, &state.forgotten);
    put_ids(&mut out, &state.remaining);
    put_f32s(&mut out, &state.params);
    put_f32s(&mut out, &state.update_norms);
    put_u32(&mut out, state.buffers.len() as u32);
    for (client, buf) in &state.buffers {
        put_u64(&mut out, *client as u64);
        put_u32(&mut out, buf.capacity() as u32);
        put_u32(&mut out, buf.len() as u32);
        for (dw, dg) in buf.pairs() {
            put_f32s(&mut out, dw);
            put_f32s(&mut out, dg);
        }
    }
    put_u32(&mut out, state.approxes.len() as u32);
    for (client, approx) in &state.approxes {
        put_u64(&mut out, *client as u64);
        put_u32(&mut out, approx.pairs() as u32);
        for j in 0..approx.pairs() {
            put_f32s(&mut out, &approx.dw_mat().col(j));
            put_f32s(&mut out, &approx.dg_mat().col(j));
        }
    }
    // v2 tail: replay scope + sibling reuses, appended last so the fixed
    // header offsets of `peek_forgotten` stay valid.
    match &state.scope {
        Some(scope) => {
            out.push(1);
            put_ids(&mut out, scope);
        }
        None => out.push(0),
    }
    put_u64(&mut out, state.sibling_reuses as u64);
    out
}

/// Rebuilds a [`ReplayState`] from a sealed payload under `config`.
///
/// The L-BFGS stack is rebuilt from the deserialised approximations and
/// must reproduce the sealed fingerprint; a mismatch means a resumed
/// replay could silently diverge, so it fails typed instead.
fn decode_state(payload: &[u8], config: &RecoveryConfig) -> Result<ReplayState, UnlearnError> {
    let mut r = Reader { buf: payload };
    if r.u16()? != STATE_VERSION {
        return Err(UnlearnError::BadJobCheckpoint("unknown state version"));
    }
    let f_round = r.u64()? as Round;
    let t_end = r.u64()? as Round;
    let next_round = r.u64()? as Round;
    let estimator_fallbacks = r.u64()? as usize;
    let oracle_queries = r.u64()? as usize;
    let prev_dw_norm = f32::from_bits(r.u32()?);
    let growth_run = r.u64()? as usize;
    let stacked_dirty = r.u8()? != 0;
    let sealed_fingerprint = r.u64()?;
    let forgotten = r.ids()?;
    let remaining = r.ids()?;
    let params = r.f32s()?;
    let update_norms = r.f32s()?;
    let dim = params.len();

    let n_buffers = r.u32()? as usize;
    let mut buffers: BTreeMap<ClientId, PairBuffer> = BTreeMap::new();
    for _ in 0..n_buffers {
        let client = r.u64()? as ClientId;
        let capacity = r.u32()? as usize;
        if capacity == 0 {
            return Err(UnlearnError::BadJobCheckpoint("zero-capacity pair buffer"));
        }
        let n_pairs = r.u32()? as usize;
        if n_pairs > capacity {
            return Err(UnlearnError::BadJobCheckpoint("pair count over capacity"));
        }
        let mut buf = PairBuffer::new(capacity);
        for _ in 0..n_pairs {
            let dw = r.f32s()?;
            let dg = r.f32s()?;
            if dw.len() != dim || dg.len() != dim {
                return Err(UnlearnError::BadJobCheckpoint("pair dimension mismatch"));
            }
            buf.push(dw, dg);
        }
        buffers.insert(client, buf);
    }

    let n_approxes = r.u32()? as usize;
    let mut approxes: BTreeMap<ClientId, LbfgsApprox> = BTreeMap::new();
    for _ in 0..n_approxes {
        let client = r.u64()? as ClientId;
        let s = r.u32()? as usize;
        let mut dws = Vec::with_capacity(s);
        let mut dgs = Vec::with_capacity(s);
        for _ in 0..s {
            let dw = r.f32s()?;
            let dg = r.f32s()?;
            if dw.len() != dim || dg.len() != dim {
                return Err(UnlearnError::BadJobCheckpoint("factor dimension mismatch"));
            }
            dws.push(dw);
            dgs.push(dg);
        }
        // Rebuilding from the exact factor columns recomputes σ and the
        // middle LU from bit-identical inputs, so the approximation (and
        // therefore every future correction) is bit-identical too.
        let approx = LbfgsApprox::new(&dws, &dgs)
            .map_err(|_| UnlearnError::BadJobCheckpoint("factor columns rejected"))?;
        approxes.insert(client, approx);
    }

    // The sealing path flushes the stack before encoding, so rebuild it
    // here and hold it to the sealed fingerprint.
    let stacked = if config.hessian_correction && !stacked_dirty {
        StackedLbfgs::build(dim, approxes.iter().map(|(c, a)| (*c, a)))
    } else {
        StackedLbfgs::build(dim, std::iter::empty())
    };
    let found = stacked.fingerprint();
    if found != sealed_fingerprint {
        return Err(UnlearnError::StackFingerprintMismatch {
            expected: sealed_fingerprint,
            found,
        });
    }

    let scope = match r.u8()? {
        0 => None,
        1 => Some(r.ids()?),
        _ => return Err(UnlearnError::BadJobCheckpoint("bad scope tag")),
    };
    let sibling_reuses = r.u64()? as usize;

    Ok(ReplayState {
        config: *config,
        forgotten,
        f_round,
        t_end,
        next_round,
        params,
        remaining,
        scope,
        buffers,
        approxes,
        prev_dw_norm,
        growth_run,
        estimator_fallbacks,
        sibling_reuses,
        oracle_queries,
        update_norms,
        stacked,
        stacked_dirty,
        roster: Vec::new(),
        weights: Vec::new(),
    })
}

/// Reads just the forgotten set out of a sealed payload (for matching
/// resubmitted requests to logged jobs without a full decode).
fn peek_forgotten(payload: &[u8]) -> Option<Vec<ClientId>> {
    let mut r = Reader { buf: payload };
    if r.u16().ok()? != STATE_VERSION {
        return None;
    }
    r.take(8 * 5 + 4 + 8 + 1 + 8).ok()?;
    r.ids().ok()
}

// ---------------------------------------------------------------------------
// Job log
// ---------------------------------------------------------------------------

/// Append-only file of FNV-sealed [`RecordKind::JobCheckpoint`] records —
/// the durable side of the service. Opening scans the file front to back,
/// keeps every record whose framing checks out, and truncates a torn tail
/// (a crash mid-append, or a fault-injected `set_len`) so new seals land
/// after the last valid record.
///
/// [`RecordKind::JobCheckpoint`]: fuiov_storage::segment::RecordKind
#[derive(Debug)]
pub struct JobLog {
    path: PathBuf,
    file: std::fs::File,
    delete_on_drop: bool,
}

impl JobLog {
    /// Opens (creating if missing) the log at `path`, returning the log
    /// positioned to append plus every valid `(job, next_round, payload)`
    /// record in file order.
    ///
    /// # Errors
    ///
    /// Propagates file open/read/truncate errors.
    pub fn open(path: &Path) -> std::io::Result<(JobLog, Vec<LoggedCheckpoint>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(len) = segment::framed_len(&bytes[pos..]) else {
                break; // torn header
            };
            if pos + len > bytes.len() {
                break; // torn payload/trailer
            }
            match segment::decode_job_checkpoint(&bytes[pos..pos + len]) {
                Ok((job, round, payload)) => records.push((job, round, payload)),
                Err(SegmentDecodeError::BadKind(_)) => {
                    // Foreign-but-intact record: skip it, keep scanning.
                }
                Err(_) => break, // corrupt from here on
            }
            pos += len;
        }
        if pos as u64 != file.metadata()?.len() {
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((
            JobLog {
                path: path.to_path_buf(),
                file,
                delete_on_drop: false,
            },
            records,
        ))
    }

    /// A log at a fresh temp path, deleted on drop (for tests and
    /// ephemeral services).
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    pub fn temp() -> std::io::Result<JobLog> {
        let path = std::env::temp_dir().join(format!(
            "fuiov-joblog-{}-{}.seg",
            std::process::id(),
            LOG_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let (mut log, _) = Self::open(&path)?;
        log.delete_on_drop = true;
        Ok(log)
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one sealed checkpoint record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, job: JobId, next_round: Round, payload: &[u8]) -> std::io::Result<()> {
        let record = segment::encode_job_checkpoint(job, next_round, payload);
        self.file.write_all(&record)?;
        self.file.flush()
    }
}

impl Drop for JobLog {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Where a job is in its life cycle.
#[derive(Debug)]
enum JobPhase {
    /// Submitted (or preempted) and waiting for activation on the next
    /// [`JobService::step`]; activation resumes from the newest decodable
    /// checkpoint if one exists.
    Pending,
    /// Mid-replay.
    Running(Box<ReplayState>),
    /// Replay finished.
    Done(RecoveryOutcome),
    /// Replay failed; the error is handed out by
    /// [`JobService::take_outcome`].
    Failed(UnlearnError),
}

#[derive(Debug)]
struct Job {
    forgotten: Vec<ClientId>,
    /// Replay scope (sorted): only these clients get Eq. 6 estimation;
    /// everyone else replays sealed directions verbatim. `None` estimates
    /// the whole cohort. See [`recover_set_scoped`](crate::recover_set_scoped).
    scope: Option<Vec<ClientId>>,
    /// Copy-on-write history snapshot taken at submission.
    snapshot: HistoryStore,
    phase: JobPhase,
    /// Per-job scratch arena — jobs batched into one cross-job sweep need
    /// their `w̄ₜ − wₜ` vectors alive simultaneously.
    scratch: RoundScratch,
    rounds_since_checkpoint: usize,
}

/// The recovery job queue: submit forget requests, [`JobService::step`]
/// until idle (or let [`JobService::run_to_completion`] drive), collect
/// outcomes. See the module docs for the isolation / resume / batching
/// contracts.
#[derive(Debug)]
pub struct JobService {
    config: JobConfig,
    jobs: BTreeMap<JobId, Job>,
    next_id: JobId,
    log: Option<JobLog>,
    /// Sealed checkpoints per job, newest last (mirrors the log so
    /// preemption and resume also work for log-less services).
    records: BTreeMap<JobId, Vec<(Round, Vec<u8>)>>,
    /// Sorted-deduped (forgotten set, scope) → job, for duplicate
    /// submissions. The scope is part of the key: the same forgotten set
    /// replayed under a different scope is a different job.
    dedup: BTreeMap<(Vec<ClientId>, Option<Vec<ClientId>>), JobId>,
}

impl JobService {
    /// An in-memory service (checkpoints live only in the process; resume
    /// still works across [`JobService::preempt`], not across crashes).
    pub fn new(config: JobConfig) -> Self {
        JobService {
            config,
            jobs: BTreeMap::new(),
            next_id: 0,
            log: None,
            records: BTreeMap::new(),
            dedup: BTreeMap::new(),
        }
    }

    /// A service backed by `log`. Checkpoints already in the log are
    /// adopted: a later [`JobService::submit`] whose forgotten set matches
    /// a logged job reuses that job's id and resumes from its newest
    /// checkpoint — the crash-recovery path.
    pub fn with_log(config: JobConfig, log: JobLog, logged: Vec<LoggedCheckpoint>) -> Self {
        let mut records: BTreeMap<JobId, Vec<(Round, Vec<u8>)>> = BTreeMap::new();
        let mut next_id = 0;
        for (job, round, payload) in logged {
            next_id = next_id.max(job + 1);
            records.entry(job).or_default().push((round, payload));
        }
        JobService {
            config,
            jobs: BTreeMap::new(),
            next_id,
            log: Some(log),
            records,
            dedup: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Submits a forget request for `forgotten`, snapshotting `history`.
    /// A duplicate of a live job's set returns the existing id; a set
    /// matching a logged (crashed) job adopts that job's id and will
    /// resume from its checkpoints.
    pub fn submit(&mut self, history: &HistoryStore, forgotten: &[ClientId]) -> JobId {
        self.submit_scoped(history, forgotten, None)
    }

    /// [`JobService::submit`] with a replay *scope*: only clients in
    /// `scope` get Eq. 6 estimation during replay; out-of-scope clients
    /// (sibling subtrees) reuse their sealed directions verbatim. The
    /// scope travels through checkpoints, so a crashed scoped job resumes
    /// scoped.
    pub fn submit_scoped(
        &mut self,
        history: &HistoryStore,
        forgotten: &[ClientId],
        scope: Option<&[ClientId]>,
    ) -> JobId {
        let mut key: Vec<ClientId> = forgotten.to_vec();
        key.sort_unstable();
        key.dedup();
        let scope: Option<Vec<ClientId>> = scope.map(|s| {
            let mut s = s.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        });
        let key = (key, scope);
        if let Some(&id) = self.dedup.get(&key) {
            fuiov_obs::counter!("jobs.duplicates").inc();
            return id;
        }
        let id = self
            .records
            .iter()
            .find(|(id, recs)| {
                !self.jobs.contains_key(id)
                    && recs
                        .last()
                        .and_then(|(_, p)| peek_forgotten(p))
                        .is_some_and(|mut f| {
                            f.sort_unstable();
                            f.dedup();
                            f == key.0
                        })
            })
            .map(|(&id, _)| id)
            .unwrap_or_else(|| {
                let id = self.next_id;
                self.next_id += 1;
                id
            });
        self.jobs.insert(
            id,
            Job {
                forgotten: forgotten.to_vec(),
                scope: key.1.clone(),
                snapshot: history.snapshot(),
                phase: JobPhase::Pending,
                scratch: RoundScratch::new(),
                rounds_since_checkpoint: 0,
            },
        );
        self.dedup.insert(key, id);
        fuiov_obs::counter!("jobs.submitted").inc();
        fuiov_obs::journal::instant("jobs.submit", id, forgotten.len() as u64);
        id
    }

    /// Drops a running job's in-memory replay state, as a preemption or
    /// crash would. The job stays queued; the next [`JobService::step`]
    /// resumes it from its newest sealed checkpoint (or from scratch if
    /// none sealed).
    pub fn preempt(&mut self, id: JobId) {
        if let Some(job) = self.jobs.get_mut(&id) {
            if matches!(job.phase, JobPhase::Running(_)) {
                job.phase = JobPhase::Pending;
                job.rounds_since_checkpoint = 0;
                fuiov_obs::counter!("jobs.preempted").inc();
            }
        }
    }

    /// Number of jobs not yet finished (pending or running).
    pub fn active_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.phase, JobPhase::Pending | JobPhase::Running(_)))
            .count()
    }

    /// Removes and returns a finished job's outcome (`None` while it is
    /// still pending/running or was never submitted).
    pub fn take_outcome(&mut self, id: JobId) -> Option<Result<RecoveryOutcome, UnlearnError>> {
        match self.jobs.get(&id)?.phase {
            JobPhase::Done(_) | JobPhase::Failed(_) => {}
            _ => return None,
        }
        let job = self.jobs.remove(&id)?;
        self.dedup.retain(|_, v| *v != id);
        self.records.remove(&id);
        match job.phase {
            JobPhase::Done(outcome) => Some(Ok(outcome)),
            JobPhase::Failed(err) => Some(Err(err)),
            _ => unreachable!("phase checked above"),
        }
    }

    /// Activates every pending job (resuming from checkpoints where
    /// possible), then advances every running job by exactly one replayed
    /// round — one cross-job fused sweep per shared round when batching is
    /// on — sealing checkpoints as intervals elapse. Returns whether any
    /// job still has work.
    pub fn step(&mut self, oracle: &mut dyn GradientOracle) -> bool {
        self.activate(oracle);

        // Group running jobs by the round they are about to replay.
        let mut by_round: BTreeMap<Round, Vec<JobId>> = BTreeMap::new();
        for (&id, job) in &self.jobs {
            if let JobPhase::Running(state) = &job.phase {
                by_round.entry(state.next_round).or_default().push(id);
            }
        }

        for ids in by_round.values() {
            self.step_round(ids);
        }
        self.active_jobs() > 0
    }

    /// Drives [`JobService::step`] until every job is done or failed.
    pub fn run_to_completion(&mut self, oracle: &mut dyn GradientOracle) {
        while self.step(oracle) {}
    }

    fn activate(&mut self, oracle: &mut dyn GradientOracle) {
        let ids: Vec<JobId> = self.jobs.keys().copied().collect();
        for id in ids {
            let job = self.jobs.get_mut(&id).expect("id just listed");
            if !matches!(job.phase, JobPhase::Pending) {
                continue;
            }
            // Newest checkpoint first; skip any that fail to decode (torn
            // log tails never reach here — JobLog truncates them — but a
            // version bump or fingerprint mismatch does).
            let mut resumed = None;
            if let Some(recs) = self.records.get(&id) {
                for (_, payload) in recs.iter().rev() {
                    match decode_state(payload, &self.config.recovery) {
                        // An adopted checkpoint from a job with the same
                        // forgotten set but a different scope must not be
                        // resumed — replay under the wrong scope diverges.
                        Ok(state) if state.scope == job.scope => {
                            resumed = Some(state);
                            break;
                        }
                        Ok(_) => {
                            fuiov_obs::counter!("jobs.checkpoint_scope_mismatches").inc();
                        }
                        Err(_) => {
                            fuiov_obs::counter!("jobs.checkpoint_decode_failures").inc();
                        }
                    }
                }
            }
            match resumed {
                Some(state) => {
                    fuiov_obs::counter!("jobs.resumed").inc();
                    fuiov_obs::journal::instant("jobs.resume", id, state.next_round as u64);
                    job.phase = JobPhase::Running(Box::new(state));
                }
                None => match ReplayState::init_scoped(
                    &job.snapshot,
                    &job.forgotten,
                    job.scope.as_deref(),
                    &self.config.recovery,
                    oracle,
                ) {
                    Ok(state) => {
                        fuiov_obs::counter!("jobs.started").inc();
                        job.phase = JobPhase::Running(Box::new(state));
                        // Seal the round-zero checkpoint so "resume at
                        // every boundary" includes a crash before the
                        // first interval elapses.
                        self.seal(id);
                    }
                    Err(err) => {
                        fuiov_obs::counter!("jobs.failed").inc();
                        job.phase = JobPhase::Failed(err);
                    }
                },
            }
        }
    }

    /// Advances every job in `ids` (all about to replay the same round) by
    /// one round, sharing one fused sweep when batching is on.
    fn step_round(&mut self, ids: &[JobId]) {
        let mut swept: Vec<(JobId, usize)> = Vec::new();
        if self.config.cross_job_batching && ids.len() > 1 {
            // Phase 1: per job, compute w̄ₜ − wₜ into its own scratch and
            // flush a dirty stack — the sweep inputs.
            for &id in ids {
                let job = self.jobs.get_mut(&id).expect("grouped id exists");
                let JobPhase::Running(state) = &mut job.phase else {
                    continue;
                };
                match state.prepare_sweep(&job.snapshot, &mut job.scratch) {
                    Ok(true) => swept.push((id, state.stacked.total_columns())),
                    Ok(false) => {}
                    Err(err) => {
                        fuiov_obs::counter!("jobs.failed").inc();
                        job.phase = JobPhase::Failed(err);
                    }
                }
            }
        }
        // Phase 2: ONE row-band pass over the concatenation of the swept
        // jobs' stacks. Bitwise: each output slot is a pure per-column
        // function, so every job's slice equals its own fused_dots.
        let mut dots = AVec::new();
        if swept.len() > 1 {
            let groups: Vec<(&StackedLbfgs, &[f32])> = swept
                .iter()
                .map(|(id, _)| {
                    let job = &self.jobs[id];
                    let JobPhase::Running(state) = &job.phase else {
                        unreachable!("swept job is running");
                    };
                    (&state.stacked, &job.scratch.dw_t[..])
                })
                .collect();
            fused_dots_multi(&groups, &mut dots);
            fuiov_obs::counter!("jobs.cross_job_sweeps").inc();
        } else {
            swept.clear(); // a lone swept job just runs its own sweep
        }
        // Phase 3: step each job, handing swept jobs their dots slice.
        let mut offset = 0usize;
        let mut swept_iter = swept.iter().peekable();
        for &id in ids {
            let slice = match swept_iter.peek() {
                Some(&&(swept_id, cols)) if swept_id == id => {
                    swept_iter.next();
                    let s = offset..offset + cols;
                    offset = s.end;
                    Some(s)
                }
                _ => None,
            };
            let job = self.jobs.get_mut(&id).expect("grouped id exists");
            let JobPhase::Running(state) = &mut job.phase else {
                continue;
            };
            let step = state.step(
                &job.snapshot,
                &mut job.scratch,
                slice.map(|s| &dots[s]),
                &mut |_, _| {},
            );
            match step {
                Ok(()) => {
                    job.rounds_since_checkpoint += 1;
                    if state.is_done() {
                        let state = match std::mem::replace(&mut job.phase, JobPhase::Pending) {
                            JobPhase::Running(state) => state,
                            _ => unreachable!("state matched running above"),
                        };
                        let outcome = state.finish();
                        fuiov_obs::counter!("jobs.completed").inc();
                        fuiov_obs::journal::instant(
                            "jobs.done",
                            id,
                            outcome.rounds_replayed as u64,
                        );
                        job.phase = JobPhase::Done(outcome);
                    } else if job.rounds_since_checkpoint >= self.config.checkpoint_interval {
                        self.seal(id);
                    }
                }
                Err(err) => {
                    fuiov_obs::counter!("jobs.failed").inc();
                    job.phase = JobPhase::Failed(err);
                }
            }
        }
    }

    /// Seals the job's current replay state into the log (and the
    /// in-memory mirror). Flushes a dirty stack first so the sealed
    /// fingerprint describes the stack a resume will rebuild — a pure
    /// computation the uninterrupted run performs lazily on its next
    /// round, so flushing early moves no bit.
    fn seal(&mut self, id: JobId) {
        let job = self.jobs.get_mut(&id).expect("sealing a live job");
        let JobPhase::Running(state) = &mut job.phase else {
            return;
        };
        if state.config.hessian_correction && state.stacked_dirty {
            let dim = state.params.len();
            state.stacked = StackedLbfgs::build(dim, state.approxes.iter().map(|(c, a)| (*c, a)));
            state.stacked_dirty = false;
            fuiov_obs::counter!("core.stack_rebuilds").inc();
        }
        let payload = encode_state(state);
        let next_round = state.next_round;
        if let Some(log) = &mut self.log {
            if log.append(id, next_round, &payload).is_err() {
                fuiov_obs::counter!("jobs.log_write_failures").inc();
            }
        }
        self.records
            .entry(id)
            .or_default()
            .push((next_round, payload));
        job.rounds_since_checkpoint = 0;
        fuiov_obs::counter!("jobs.checkpoints_sealed").inc();
        fuiov_obs::journal::instant("jobs.checkpoint", id, next_round as u64);
    }
}

/// Submits every drained [`ForgetRequest`](fuiov_fl::ForgetRequest) to the
/// service (the `fl::server` intake → `core::jobs` bridge), returning the
/// job id each request landed on (duplicates collapse onto one id).
pub fn ingest_requests(
    service: &mut JobService,
    history: &HistoryStore,
    requests: &[fuiov_fl::ForgetRequest],
) -> Vec<JobId> {
    requests
        .iter()
        .map(|req| service.submit(history, &req.clients))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_interval_parsing() {
        assert_eq!(parse_checkpoint_interval(None), 4);
        assert_eq!(parse_checkpoint_interval(Some("7")), 7);
        assert_eq!(parse_checkpoint_interval(Some(" 2 ")), 2);
        assert_eq!(parse_checkpoint_interval(Some("0")), 4);
        assert_eq!(parse_checkpoint_interval(Some("many")), 4);
        assert_eq!(parse_checkpoint_interval(Some("")), 4);
    }

    #[test]
    fn job_log_survives_reopen_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "fuiov-joblog-test-{}-{}",
            std::process::id(),
            LOG_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("jobs.seg");

        let (mut log, records) = JobLog::open(&path).expect("fresh log");
        assert!(records.is_empty());
        log.append(3, 5, b"alpha").expect("append");
        log.append(3, 9, b"beta").expect("append");
        log.append(4, 2, b"gamma").expect("append");
        drop(log);

        let (log, records) = JobLog::open(&path).expect("reopen");
        let got: Vec<(JobId, Round, &[u8])> = records
            .iter()
            .map(|(j, r, p)| (*j, *r, p.as_slice()))
            .collect();
        assert_eq!(
            got,
            vec![
                (3, 5, b"alpha".as_slice()),
                (3, 9, b"beta".as_slice()),
                (4, 2, b"gamma".as_slice())
            ]
        );

        // Tear the tail mid-record; reopen keeps the intact prefix and
        // truncates the wreckage so appends land after "beta".
        drop(log);
        let full = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("reopen rw");
        f.set_len(full - 7).expect("tear");
        drop(f);
        let (mut log, records) = JobLog::open(&path).expect("reopen torn");
        assert_eq!(records.len(), 2, "torn third record dropped");
        log.append(5, 1, b"delta").expect("append after tear");
        drop(log);
        let (_log, records) = JobLog::open(&path).expect("reopen again");
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].0, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_is_also_dropped() {
        let mut log = JobLog::temp().expect("temp log");
        log.append(1, 1, b"one").expect("append");
        let path = log.path().to_path_buf();
        // Append 3 stray bytes — less than a header.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("rw");
            f.write_all(&[0xde, 0xad, 0xbe]).expect("stray");
        }
        let (_log2, records) = JobLog::open(&path).expect("reopen");
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn peek_forgotten_reads_the_header_only() {
        let bad = peek_forgotten(&[0xff, 0xff]);
        assert_eq!(bad, None);
        // Version + fixed header + empty forgotten list.
        let mut payload = Vec::new();
        payload.extend_from_slice(&STATE_VERSION.to_le_bytes());
        payload.extend_from_slice(&[0u8; 8 * 5 + 4 + 8 + 1 + 8]);
        put_ids(&mut payload, &[9, 4]);
        assert_eq!(peek_forgotten(&payload), Some(vec![9, 4]));
    }
}
