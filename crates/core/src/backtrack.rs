//! Forgetting by backtracking (the paper's §IV-A, Eq. 5).
//!
//! To erase a client that joined at round `F`, the server rolls the global
//! model back to `w_F` — the state *before* the client's first update was
//! aggregated. Everything learned in rounds `1..F` is preserved; nothing
//! the forgotten client ever contributed remains, because none of its
//! updates had been applied yet at `w_F`.

use crate::error::UnlearnError;
use fuiov_storage::{ClientId, HistoryStore, Round};

/// The result of backtracking: the unlearned model and where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktrackResult {
    /// The forgotten clients.
    pub clients: Vec<ClientId>,
    /// The earliest join round `F` among the forgotten clients — the
    /// round backtracked to.
    pub join_round: Round,
    /// The unlearned model `w̄ = w_F` (Eq. 5).
    pub params: Vec<f32>,
    /// The latest round `T` the history covers (recovery replays `F..T`).
    pub latest_round: Round,
}

/// Backtracks the global model to erase `client` (Eq. 5): `w̄ ← w_F`.
///
/// # Errors
///
/// - [`UnlearnError::EmptyHistory`] if no models were recorded;
/// - [`UnlearnError::UnknownClient`] if the client never joined;
/// - [`UnlearnError::MissingModel`] if `w_F` was not recorded.
pub fn backtrack(
    history: &HistoryStore,
    client: ClientId,
) -> Result<BacktrackResult, UnlearnError> {
    backtrack_set(history, &[client])
}

/// Backtracks to erase a *set* of clients — e.g. every detected attacker
/// in the Fig. 1 poisoning-recovery scenario. The model rolls back to the
/// *earliest* join round among them, so none of their updates survive.
///
/// # Errors
///
/// - [`UnlearnError::EmptyHistory`] if no models were recorded or the set
///   is empty;
/// - [`UnlearnError::UnknownClient`] if any client never joined;
/// - [`UnlearnError::MissingModel`] if `w_F` was not recorded.
pub fn backtrack_set(
    history: &HistoryStore,
    clients: &[ClientId],
) -> Result<BacktrackResult, UnlearnError> {
    let latest_round = history.latest_round().ok_or(UnlearnError::EmptyHistory)?;
    if clients.is_empty() {
        return Err(UnlearnError::EmptyHistory);
    }
    let mut join_round = Round::MAX;
    for &c in clients {
        let f = history
            .join_round(c)
            .ok_or(UnlearnError::UnknownClient(c))?;
        join_round = join_round.min(f);
    }
    let params = history
        .model(join_round)
        .ok_or(UnlearnError::MissingModel(join_round))?
        .to_vec();
    Ok(BacktrackResult {
        clients: clients.to_vec(),
        join_round,
        params,
        latest_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> HistoryStore {
        let mut h = HistoryStore::new(1e-6);
        for t in 0..=4 {
            h.record_model(t, vec![t as f32; 3]);
        }
        h.record_join(1, 0);
        h.record_join(2, 2);
        h
    }

    #[test]
    fn backtracks_to_join_round_model() {
        let h = history();
        let r = backtrack(&h, 2).unwrap();
        assert_eq!(r.join_round, 2);
        assert_eq!(r.params, vec![2.0, 2.0, 2.0]);
        assert_eq!(r.latest_round, 4);
    }

    #[test]
    fn client_from_round_zero_backtracks_to_initial_model() {
        let h = history();
        let r = backtrack(&h, 1).unwrap();
        assert_eq!(r.join_round, 0);
        assert_eq!(r.params, vec![0.0; 3]);
    }

    #[test]
    fn set_backtracks_to_earliest_join() {
        let h = history();
        let r = backtrack_set(&h, &[2, 1]).unwrap();
        assert_eq!(r.join_round, 0);
        assert_eq!(r.clients, vec![2, 1]);
        assert_eq!(r.params, vec![0.0; 3]);
    }

    #[test]
    fn empty_set_errors() {
        let h = history();
        assert_eq!(
            backtrack_set(&h, &[]).unwrap_err(),
            UnlearnError::EmptyHistory
        );
    }

    #[test]
    fn set_with_unknown_member_errors() {
        let h = history();
        assert_eq!(
            backtrack_set(&h, &[1, 50]).unwrap_err(),
            UnlearnError::UnknownClient(50)
        );
    }

    #[test]
    fn unknown_client_errors() {
        let h = history();
        assert_eq!(
            backtrack(&h, 99).unwrap_err(),
            UnlearnError::UnknownClient(99)
        );
    }

    #[test]
    fn empty_history_errors() {
        let h = HistoryStore::new(0.0);
        assert_eq!(backtrack(&h, 0).unwrap_err(), UnlearnError::EmptyHistory);
    }

    #[test]
    fn missing_model_errors() {
        let mut h = HistoryStore::new(0.0);
        h.record_model(5, vec![1.0]);
        h.record_join(3, 2); // joined at round 2, but w_2 was never stored
        assert_eq!(backtrack(&h, 3).unwrap_err(), UnlearnError::MissingModel(2));
    }
}
