//! Vehicle-level unlearning on hierarchical cohorts.
//!
//! A [`CohortRun`] keeps *group-level* history — one pseudo-client per
//! RSU leaf, not one per vehicle — so a forgotten vehicle has no history
//! entry of its own to hand to [`recover_set`](crate::recover_set).
//! This module bridges the gap with the **ghost-client** construction:
//!
//! 1. Snapshot the group history (copy-on-write, O(leaves) not
//!    O(vehicles)).
//! 2. Record a *ghost* pseudo-client (id one past every leaf) whose join
//!    round is the forgotten vehicle's join round. The ghost contributes
//!    no gradients; it exists purely so backtracking lands on `F` = the
//!    vehicle's first participating round.
//! 3. Reduce the vehicle's leaf to its residual FedAvg weight
//!    (`Σ wᵢ − w_v`), then replay with the scope pinned to that single
//!    leaf: every sibling leaf's sealed aggregate is *exactly* unchanged
//!    by the forget, so [`recover_set_scoped`](crate::recover_set_scoped)
//!    replays siblings verbatim and spends Eq. 6 estimation only on the
//!    one leaf whose aggregate actually changed.
//!
//! A vehicle that is alone on its leaf degenerates cleanly: the leaf
//! itself is forgotten with an *empty* scope (pure sealed-direction
//! replay — no estimation at all).
//!
//! The payoff is the paper's hierarchy argument at recovery time: cost
//! scales with one root-to-leaf path, not with the cohort.

use crate::error::UnlearnError;
use crate::recover::{recover_set_scoped, GradientOracle, RecoveryConfig, RecoveryOutcome};
use fuiov_fl::hierarchy::{CohortRun, VehicleForget};
use fuiov_storage::ClientId;

/// Result of a vehicle-level forget on a hierarchical cohort.
#[derive(Debug, Clone)]
pub struct VehicleRecovery {
    /// The replayed recovery (params, sibling reuses, fallbacks, …).
    pub outcome: RecoveryOutcome,
    /// What was forgotten: vehicle, leaf, weights, join round.
    pub forget: VehicleForget,
}

/// Forgets one vehicle from a hierarchical cohort by subtree-scoped
/// replay of the group history (see the module docs for the ghost-client
/// construction).
///
/// # Errors
///
/// Propagates [`UnlearnError`] from backtracking and replay — notably
/// [`UnlearnError::NothingToRecover`] when the vehicle joined at the
/// final round, and [`UnlearnError::EmptyMembershipWindow`] when the
/// cohort has a single leaf and the vehicle is alone on it.
pub fn recover_vehicle(
    run: &CohortRun,
    vehicle: ClientId,
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
) -> Result<VehicleRecovery, UnlearnError> {
    vehicle_replay(run, vehicle, true, config, oracle)
}

/// The flat baseline for [`recover_vehicle`]: the same ghost-client
/// forget, but replayed *unscoped* — every leaf pseudo-client gets Eq. 6
/// estimation as if the hierarchy did not exist. Exists so benchmarks
/// (`exp_scale`) can measure what subtree scoping saves on identical
/// inputs; production callers want [`recover_vehicle`].
pub fn recover_vehicle_flat(
    run: &CohortRun,
    vehicle: ClientId,
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
) -> Result<VehicleRecovery, UnlearnError> {
    vehicle_replay(run, vehicle, false, config, oracle)
}

fn vehicle_replay(
    run: &CohortRun,
    vehicle: ClientId,
    scoped: bool,
    config: &RecoveryConfig,
    oracle: &mut dyn GradientOracle,
) -> Result<VehicleRecovery, UnlearnError> {
    let forget = run.forget_spec(vehicle);
    let mut snapshot = run.history.snapshot();
    let (forgotten, scope): (Vec<ClientId>, Vec<ClientId>) = if forget.singleton {
        // The vehicle IS its leaf: forget the leaf pseudo-client outright;
        // every other leaf is a sibling replayed from sealed directions.
        (vec![forget.leaf], Vec::new())
    } else {
        // Ghost pseudo-client pins the backtrack point to the vehicle's
        // join round without disturbing any leaf's recorded directions.
        let ghost: ClientId = run.cfg.leaf_count();
        snapshot.record_join(ghost, forget.join_round);
        snapshot.set_weight(forget.leaf, forget.reduced_leaf_weight);
        (vec![ghost], vec![forget.leaf])
    };
    let outcome = recover_set_scoped(
        &snapshot,
        &forgotten,
        scoped.then_some(scope.as_slice()),
        config,
        oracle,
        |_, _| {},
    )?;
    Ok(VehicleRecovery { outcome, forget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::NoOracle;
    use fuiov_fl::hierarchy::{run_cohort, CohortConfig};

    fn cohort(n: usize, group: usize) -> CohortRun {
        run_cohort(
            CohortConfig::new(n)
                .group_size(group)
                .dim(16)
                .rounds(6)
                .seed(7),
        )
    }

    #[test]
    fn vehicle_forget_replays_only_its_leaf() {
        let run = cohort(64, 16); // 4 leaves
        let cfg = RecoveryConfig::new(run.cfg.lr);
        let rec = recover_vehicle(&run, 21, &cfg, &mut NoOracle).expect("recovery succeeds");
        assert_eq!(rec.forget.leaf, 1);
        assert!(!rec.forget.singleton);
        assert_eq!(rec.outcome.params.len(), run.params.len());
        assert!(rec.outcome.params.iter().all(|x| x.is_finite()));
        // 3 sibling leaves × every replayed round reuse sealed aggregates.
        assert_eq!(rec.outcome.sibling_reuses, 3 * rec.outcome.rounds_replayed);
    }

    #[test]
    fn singleton_leaf_forgets_the_leaf_itself() {
        let run = cohort(4, 1); // every vehicle is its own leaf
        let cfg = RecoveryConfig::new(run.cfg.lr);
        let rec = recover_vehicle(&run, 2, &cfg, &mut NoOracle).expect("recovery succeeds");
        assert!(rec.forget.singleton);
        // Pure sealed-direction replay: nothing in scope, no estimation.
        assert_eq!(rec.outcome.estimator_fallbacks, 0);
        assert_eq!(rec.outcome.sibling_reuses, 3 * rec.outcome.rounds_replayed);
    }

    #[test]
    fn flat_baseline_estimates_every_leaf() {
        let run = cohort(64, 16);
        let cfg = RecoveryConfig::new(run.cfg.lr);
        let flat = recover_vehicle_flat(&run, 21, &cfg, &mut NoOracle).expect("flat succeeds");
        assert_eq!(flat.outcome.sibling_reuses, 0);
        assert!(flat.outcome.params.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ghost_client_does_not_leak_into_the_live_history() {
        let run = cohort(32, 8);
        let leaves = run.history.clients();
        let cfg = RecoveryConfig::new(run.cfg.lr);
        let _ = recover_vehicle(&run, 5, &cfg, &mut NoOracle).expect("recovery succeeds");
        // The ghost and the reweight lived only in the CoW snapshot.
        assert_eq!(run.history.clients(), leaves);
        assert_eq!(run.history.weight(0), run.cfg.full_leaf_weight(0) as f32);
    }
}
