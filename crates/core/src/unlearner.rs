//! High-level unlearning API tying backtracking and recovery together.

use crate::backtrack::{backtrack, BacktrackResult};
use crate::error::UnlearnError;
use crate::recover::{recover, GradientOracle, NoOracle, RecoveryConfig, RecoveryOutcome};
use fuiov_fl::Client;
use fuiov_storage::{ClientId, HistoryStore};

/// The server-side unlearning engine.
///
/// Wraps a [`HistoryStore`] (recorded during normal training by
/// `fuiov_fl::Server`) and executes the paper's pipeline: forget via
/// backtracking (Eq. 5), then recover by replaying rounds `F..T` with
/// Cauchy-MVT gradient estimation (Eq. 6), L-BFGS Hessian approximation
/// (Algorithm 2) and element-wise clipping (Eq. 7).
///
/// ```no_run
/// use fuiov_core::{RecoveryConfig, Unlearner};
/// # fn demo(history: fuiov_storage::HistoryStore) -> Result<(), fuiov_core::UnlearnError> {
/// let unlearner = Unlearner::new(&history, RecoveryConfig::new(1e-4));
/// let outcome = unlearner.forget_and_recover(42)?; // erase client 42
/// println!("recovered model has {} params", outcome.params.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Unlearner<'h> {
    history: &'h HistoryStore,
    config: RecoveryConfig,
}

impl<'h> Unlearner<'h> {
    /// Creates an unlearner over a recorded history.
    pub fn new(history: &'h HistoryStore, config: RecoveryConfig) -> Self {
        Unlearner { history, config }
    }

    /// The recovery configuration in force.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Forgets `client` by backtracking only (Eq. 5) — the unlearned,
    /// unrecovered model `w̄ = w_F`.
    ///
    /// # Errors
    ///
    /// See [`backtrack`].
    pub fn forget(&self, client: ClientId) -> Result<BacktrackResult, UnlearnError> {
        backtrack(self.history, client)
    }

    /// Full pipeline with no online vehicles (history-only recovery — the
    /// paper's headline setting).
    ///
    /// # Errors
    ///
    /// See [`recover`].
    pub fn forget_and_recover(&self, client: ClientId) -> Result<RecoveryOutcome, UnlearnError> {
        recover(self.history, client, &self.config, &mut NoOracle, |_, _| {})
    }

    /// Forgets a *set* of clients at once (e.g. all detected attackers):
    /// backtrack to the earliest join round among them, then recover with
    /// the whole set excluded.
    ///
    /// # Errors
    ///
    /// See [`crate::recover::recover_set`].
    pub fn forget_and_recover_set(
        &self,
        clients: &[ClientId],
    ) -> Result<RecoveryOutcome, UnlearnError> {
        crate::recover::recover_set(
            self.history,
            clients,
            &self.config,
            &mut NoOracle,
            |_, _| {},
        )
    }

    /// Full pipeline with an oracle for still-online vehicles and a
    /// per-round trace callback.
    ///
    /// # Errors
    ///
    /// See [`recover`].
    pub fn forget_and_recover_with(
        &self,
        client: ClientId,
        oracle: &mut dyn GradientOracle,
        on_round: impl FnMut(fuiov_storage::Round, &[f32]),
    ) -> Result<RecoveryOutcome, UnlearnError> {
        recover(self.history, client, &self.config, oracle, on_round)
    }
}

/// A [`GradientOracle`] backed by a pool of live [`Client`]s — the paper's
/// "dispatch historical models to still-online vehicles" mechanism.
///
/// Clients absent from the pool (departed vehicles) yield `None`.
pub struct ClientPoolOracle<'c> {
    clients: Vec<&'c mut Box<dyn Client>>,
}

impl std::fmt::Debug for ClientPoolOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPoolOracle")
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl<'c> ClientPoolOracle<'c> {
    /// Wraps the still-online subset of a client pool.
    pub fn new(clients: Vec<&'c mut Box<dyn Client>>) -> Self {
        ClientPoolOracle { clients }
    }
}

impl GradientOracle for ClientPoolOracle<'_> {
    fn gradient_at(&mut self, client: ClientId, params: &[f32]) -> Option<Vec<f32>> {
        let c = self.clients.iter_mut().find(|c| c.id() == client)?;
        // Round number is irrelevant for a dispatched model; use 0 so the
        // computation is deterministic.
        Some(c.gradient(params, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::{Dataset, DigitStyle};
    use fuiov_fl::mobility::{ChurnSchedule, Membership};
    use fuiov_fl::{FlConfig, HonestClient, Server};
    use fuiov_nn::ModelSpec;

    fn trained_server(
        rounds: usize,
        n_clients: usize,
        forgotten: usize,
    ) -> (Server, Vec<Box<dyn Client>>) {
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        let data = Dataset::digits(20 * n_clients, &DigitStyle::small(), 11);
        let parts = fuiov_data::partition::partition_iid(data.len(), n_clients, 11);
        let mut clients: Vec<Box<dyn Client>> = parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, spec, data.subset(&idx), 10, 11)) as Box<dyn Client>
            })
            .collect();
        let cfg = FlConfig::new(rounds, 0.3)
            .batch_size(10)
            .parallel_clients(false);
        let mut server = Server::new(cfg, spec.build(7).params());
        let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
        schedule.set_membership(
            forgotten,
            Membership {
                joined: 2,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        server.train(&mut clients, &schedule);
        (server, clients)
    }

    #[test]
    fn end_to_end_forget_and_recover() {
        let (server, _clients) = trained_server(12, 4, 1);
        let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(0.3));
        let bt = unlearner.forget(1).unwrap();
        assert_eq!(bt.join_round, 2);
        assert_eq!(&bt.params[..], &*server.history().model(2).unwrap());

        let out = unlearner.forget_and_recover(1).unwrap();
        assert_eq!(out.rounds_replayed, 10);
        assert!(out.params.iter().all(|v| v.is_finite()));
        // The recovered model differs from the unlearned model.
        assert!(fuiov_tensor::vector::l2_distance(&out.params, &bt.params) > 1e-6);
        // And from the original final model (the forgotten client's
        // influence is gone).
        assert!(fuiov_tensor::vector::l2_distance(&out.params, server.params()) > 1e-9);
    }

    #[test]
    fn oracle_backed_recovery_queries_live_clients() {
        // Forgotten client joined at 2; another client joins at 3 so its
        // seed window needs the oracle.
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        let n = 4;
        let data = Dataset::digits(20 * n, &DigitStyle::small(), 13);
        let parts = fuiov_data::partition::partition_iid(data.len(), n, 13);
        let mut clients: Vec<Box<dyn Client>> = parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(id, spec, data.subset(&idx), 10, 13)) as Box<dyn Client>
            })
            .collect();
        let cfg = FlConfig::new(10, 0.3)
            .batch_size(10)
            .parallel_clients(false);
        let mut server = Server::new(cfg, spec.build(7).params());
        let mut schedule = ChurnSchedule::static_membership(n, 10);
        schedule.set_membership(
            1,
            Membership {
                joined: 2,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        schedule.set_membership(
            3,
            Membership {
                joined: 3,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        server.train(&mut clients, &schedule);

        let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(0.3));
        let mut refs: Vec<&mut Box<dyn Client>> = clients.iter_mut().collect();
        refs.retain(|c| c.id() != 1);
        let mut oracle = ClientPoolOracle::new(refs);
        let out = unlearner
            .forget_and_recover_with(1, &mut oracle, |_, _| {})
            .unwrap();
        assert!(out.oracle_queries > 0);
    }

    #[test]
    fn forgetting_unknown_client_errors() {
        let (server, _) = trained_server(5, 3, 1);
        let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(0.1));
        assert_eq!(
            unlearner.forget(99).unwrap_err(),
            UnlearnError::UnknownClient(99)
        );
    }
}
