//! Batched recovery-round engine: stacked L-BFGS Hessian-vector products.
//!
//! Every replayed round applies each remaining client's compact L-BFGS
//! approximation to the **same** shared vector `v = w̄ₜ − wₜ` (Eq. 6). The
//! per-client path therefore performs `n` independent small `hvp`s whose
//! inbound passes all stream `v` again. This module restructures the round
//! into block linear algebra over one stacked factor matrix:
//!
//! 1. **Fused inbound pass** — all clients' factor columns
//!    `[ΔG₁ ΔW₁ │ ΔG₂ ΔW₂ │ …]` live in one `Σᵢ2sᵢ × d` matrix (stored
//!    *transposed* so each logical column is a contiguous row), and a
//!    single [`Mat::row_dots_into`] sweep computes every `colᵀ·v` at once,
//!    parallelised over stacked columns via the row-band pool.
//! 2. **Middle solves** — per client, the tiny `2sᵢ × 2sᵢ` factored system
//!    is solved against its slice of the fused dots (scratch recycled
//!    across clients).
//! 3. **Fused outbound pass** — per client, `σv − ΔG·p₁ − σΔW·p₂` is
//!    accumulated straight into that client's estimate row of the round
//!    scratch, reading the client's `2s` stacked rows as parallel streams.
//!
//! **Bitwise identity.** Each stacked column's dot accumulates `f64`
//! contributions in ascending element order with the `v[r] == 0.0` skip —
//! exactly [`Mat::tr_matvec`]'s per-column order. The rhs rounds the
//! `ΔW`-half to `f32` *before* the σ scaling (matching `tr_matvec` then
//! `vector::scale`), the middle solve is the same [`Lu`] factorisation,
//! and the outbound combination replays the per-element `scale` + `axpy`
//! sequence of the per-client path. Every `f32` operation therefore
//! happens in the same order with the same inputs, and the recovered model
//! is bit-for-bit the per-client result at every thread count
//! (see `tests/props.rs` and the frozen golden trace).
//!
//! [`Mat::row_dots_into`]: fuiov_tensor::Mat::row_dots_into
//! [`Mat::tr_matvec`]: fuiov_tensor::Mat::tr_matvec
//! [`Lu`]: fuiov_tensor::solve::Lu

use crate::lbfgs::LbfgsApprox;
use fuiov_storage::ClientId;
use fuiov_tensor::simd::AVec;
use fuiov_tensor::solve::Lu;
use fuiov_tensor::Mat;

/// One client's block inside the stack.
#[derive(Debug, Clone)]
struct StackedEntry {
    /// First stacked row of this client's block (`ΔG` columns first, then
    /// `ΔW` columns).
    offset: usize,
    /// Pair count `s` (the block spans `2s` stacked rows).
    pairs: usize,
    sigma: f32,
    middle: Lu,
}

/// All remaining clients' L-BFGS factors stacked into one matrix, ready to
/// serve a whole recovery round with one fused inbound sweep.
///
/// Rebuild (via [`StackedLbfgs::build`]) whenever any client's
/// approximation changes — pair refreshes are rare (every
/// `pair_refresh_interval` rounds), so the copy amortises across many
/// replayed rounds.
#[derive(Debug, Clone)]
pub struct StackedLbfgs {
    dim: usize,
    /// `Σᵢ2sᵢ × dim`, row-major: row `offsetᵢ + j` is client i's `ΔG`
    /// column j; row `offsetᵢ + sᵢ + j` its `ΔW` column j.
    stack: Mat,
    entries: Vec<StackedEntry>,
    /// Ascending client ids, parallel to `entries`.
    clients: Vec<ClientId>,
}

impl StackedLbfgs {
    /// Stacks the given approximations (must arrive in ascending client
    /// order, e.g. by iterating a `BTreeMap`). `dim` is the model
    /// dimension; an empty iterator yields an empty stack.
    ///
    /// # Panics
    ///
    /// Panics if an approximation's dimension differs from `dim` or the
    /// client ids are not strictly ascending.
    pub fn build<'a, I>(dim: usize, approxes: I) -> Self
    where
        I: IntoIterator<Item = (ClientId, &'a LbfgsApprox)>,
    {
        let mut entries = Vec::new();
        let mut clients = Vec::new();
        let mut data: Vec<f32> = Vec::new();
        let mut offset = 0usize;
        for (client, approx) in approxes {
            assert_eq!(approx.dim(), dim, "StackedLbfgs: dimension mismatch");
            assert!(
                clients.last().is_none_or(|&last| last < client),
                "StackedLbfgs: clients must be strictly ascending"
            );
            let s = approx.pairs();
            for j in 0..s {
                data.extend(approx.dg_mat().col(j));
            }
            for j in 0..s {
                data.extend(approx.dw_mat().col(j));
            }
            entries.push(StackedEntry {
                offset,
                pairs: s,
                sigma: approx.sigma(),
                middle: approx.middle_lu().clone(),
            });
            clients.push(client);
            offset += 2 * s;
        }
        let stack = if offset == 0 {
            Mat::zeros(0, dim.max(1))
        } else {
            Mat::from_vec(offset, dim, data)
        };
        StackedLbfgs {
            dim,
            stack,
            entries,
            clients,
        }
    }

    /// Whether no client is stacked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of stacked clients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total stacked factor columns `Σᵢ2sᵢ`.
    pub fn total_columns(&self) -> usize {
        self.stack.rows()
    }

    /// The entry index serving `client`, if it is stacked.
    pub fn entry_for(&self, client: ClientId) -> Option<usize> {
        self.clients.binary_search(&client).ok()
    }

    /// Model dimension the stack was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Order-sensitive FNV-1a fingerprint of everything that feeds the
    /// stacked arithmetic: the dimension, each client's id / block offset /
    /// pair count / `σ` bits, and every stacked factor element's `f32`
    /// bits. Two stacks with equal fingerprints produce bitwise-identical
    /// sweeps, so `core::jobs` seals this value into each checkpoint and
    /// verifies it after rebuilding the stack on resume.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes =
            Vec::with_capacity(16 + self.entries.len() * 28 + self.stack.rows() * self.dim * 4);
        bytes.extend_from_slice(&(self.dim as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (client, e) in self.clients.iter().zip(&self.entries) {
            bytes.extend_from_slice(&(*client as u64).to_le_bytes());
            bytes.extend_from_slice(&(e.offset as u64).to_le_bytes());
            bytes.extend_from_slice(&(e.pairs as u64).to_le_bytes());
            bytes.extend_from_slice(&e.sigma.to_bits().to_le_bytes());
        }
        for r in 0..self.stack.rows() {
            for &x in self.stack.row(r) {
                bytes.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        fuiov_storage::segment::fnv1a64(&bytes)
    }

    /// Pass 1: the fused inbound sweep. Computes every stacked column's
    /// `f64`-accumulated dot with the shared `v` into `dots` (resized to
    /// [`StackedLbfgs::total_columns`]), one parallel row-band pass over
    /// the whole stack.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn fused_dots(&self, v: &[f32], dots: &mut AVec) {
        assert_eq!(v.len(), self.dim, "fused_dots: dimension mismatch");
        dots.clear();
        dots.resize(self.stack.rows(), 0.0);
        if !dots.is_empty() {
            self.stack.row_dots_into(v, dots);
        }
    }

    /// The range form of pass 1: computes stacked columns
    /// `rows.start..rows.end`'s dots with `v` into `band` (one slot per
    /// column), without touching the rest of the stack. Each column's dot
    /// is a pure function of that column and `v`, so any partition of
    /// `0..total_columns()` into range calls reproduces
    /// [`StackedLbfgs::fused_dots`] bit-for-bit — the property
    /// [`fused_dots_multi`] builds its cross-job sweep on.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`, the range exceeds
    /// [`StackedLbfgs::total_columns`], or `band.len() != rows.len()`.
    pub fn dots_range_into(&self, v: &[f32], rows: std::ops::Range<usize>, band: &mut [f32]) {
        assert_eq!(v.len(), self.dim, "dots_range_into: dimension mismatch");
        self.stack.row_dots_range_into(v, rows, band);
    }

    /// Pass 2: every client's middle solve against its slice of the fused
    /// dots. `ps` receives the solutions at the same offsets as `dots`
    /// (client i's `p` occupies `ps[offsetᵢ..offsetᵢ+2sᵢ]`); the two
    /// scratch vectors are recycled across clients and calls.
    ///
    /// # Panics
    ///
    /// Panics if `dots.len() != total_columns()`.
    pub fn solve_middles(
        &self,
        dots: &[f32],
        ps: &mut Vec<f32>,
        rhs_scratch: &mut Vec<f32>,
        p_scratch: &mut Vec<f32>,
    ) {
        assert_eq!(
            dots.len(),
            self.stack.rows(),
            "solve_middles: dots length mismatch"
        );
        ps.clear();
        for e in &self.entries {
            let s = e.pairs;
            // rhs = [ΔGᵀv ; σ·ΔWᵀv]: the ΔW dots were rounded to f32 by
            // pass 1, so scaling here matches tr_matvec → vector::scale.
            rhs_scratch.clear();
            rhs_scratch.extend_from_slice(&dots[e.offset..e.offset + s]);
            rhs_scratch.extend(
                dots[e.offset + s..e.offset + 2 * s]
                    .iter()
                    .map(|&x| x * e.sigma),
            );
            e.middle.solve_into(rhs_scratch, p_scratch);
            ps.extend_from_slice(p_scratch);
        }
    }

    /// Pass 3 for one client: accumulates the Eq. 6 correction
    /// `σv − ΔG·p₁ − σΔW·p₂` into `est` (`est[r] += 1.0 · correction[r]`,
    /// the exact `axpy(1.0, …)` of the per-client path).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range or slice lengths mismatch.
    pub fn accumulate_correction(&self, entry: usize, ps: &[f32], v: &[f32], est: &mut [f32]) {
        self.apply(entry, ps, v, est, true);
    }

    /// Pass 3 writing the raw Hessian-vector product instead of
    /// accumulating — bit-for-bit [`LbfgsApprox::hvp`] of the stacked
    /// client, used by the equivalence tests and benches.
    ///
    /// # Panics
    ///
    /// As [`StackedLbfgs::accumulate_correction`].
    pub fn write_hvp(&self, entry: usize, ps: &[f32], v: &[f32], out: &mut [f32]) {
        self.apply(entry, ps, v, out, false);
    }

    // `-1.0 * x` is deliberate: it replays `axpy(-1.0, …)`'s exact `a * xi`
    // multiply so the combination stays bit-for-bit the per-client chain.
    #[allow(clippy::neg_multiply)]
    fn apply(&self, entry: usize, ps: &[f32], v: &[f32], out: &mut [f32], accumulate: bool) {
        let e = &self.entries[entry];
        let s = e.pairs;
        assert_eq!(v.len(), self.dim, "apply: dimension mismatch");
        assert_eq!(out.len(), self.dim, "apply: output dimension mismatch");
        let p = &ps[e.offset..e.offset + 2 * s];
        let (p1, p2) = p.split_at(s);
        let sigma = e.sigma;
        // Per element: the same f64 dot (ascending j, no zero skip) and
        // f32 combination sequence as `apply_compact` / the original
        // matvec + scale + axpy chain.
        if s == 2 {
            // The paper's buffer size — fully zipped streams, no indexing.
            let (g0, g1) = (self.stack.row(e.offset), self.stack.row(e.offset + 1));
            let (w0, w1) = (self.stack.row(e.offset + 2), self.stack.row(e.offset + 3));
            let (pg0, pg1) = (f64::from(p1[0]), f64::from(p1[1]));
            let (pw0, pw1) = (f64::from(p2[0]), f64::from(p2[1]));
            for (((((&vr, slot), &x0), &x1), &y0), &y1) in
                v.iter().zip(out.iter_mut()).zip(g0).zip(g1).zip(w0).zip(w1)
            {
                let mut acc_g = 0.0f64;
                acc_g += f64::from(x0) * pg0;
                acc_g += f64::from(x1) * pg1;
                let part_g = acc_g as f32;
                let mut acc_w = 0.0f64;
                acc_w += f64::from(y0) * pw0;
                acc_w += f64::from(y1) * pw1;
                let part_w = acc_w as f32;
                let mut t = vr * sigma;
                t += -1.0 * part_g;
                t += -sigma * part_w;
                if accumulate {
                    *slot += 1.0 * t;
                } else {
                    *slot = t;
                }
            }
            return;
        }
        // The client's 2s stacked rows, read as parallel sequential
        // streams: element r of logical factor column j is rows_?[j][r].
        let rows_g: Vec<&[f32]> = (0..s).map(|j| self.stack.row(e.offset + j)).collect();
        let rows_w: Vec<&[f32]> = (0..s).map(|j| self.stack.row(e.offset + s + j)).collect();
        for (r, (&vr, slot)) in v.iter().zip(out.iter_mut()).enumerate() {
            let mut acc_g = 0.0f64;
            for (row, &pj) in rows_g.iter().zip(p1) {
                acc_g += f64::from(row[r]) * f64::from(pj);
            }
            let part_g = acc_g as f32;
            let mut acc_w = 0.0f64;
            for (row, &pj) in rows_w.iter().zip(p2) {
                acc_w += f64::from(row[r]) * f64::from(pj);
            }
            let part_w = acc_w as f32;
            let mut t = vr * sigma;
            t += -1.0 * part_g;
            t += -sigma * part_w;
            if accumulate {
                *slot += 1.0 * t;
            } else {
                *slot = t;
            }
        }
    }
}

/// The *cross-job* fused inbound sweep: one parallel row-band pass over
/// the concatenation of several jobs' stacks, each dotted against its own
/// job's `w̄ₜ − wₜ`. `dots` receives every group's per-column dots
/// back-to-back in group order — group `i`'s slice starts at
/// `Σ_{j<i} total_columns(j)` and is bit-for-bit what
/// [`StackedLbfgs::fused_dots`] would have produced for that group alone,
/// because every output slot is a pure per-column function
/// ([`StackedLbfgs::dots_range_into`]); the shared banding only changes
/// the schedule, never the bytes.
///
/// This is how `core::jobs` batches replay across concurrent unlearning
/// jobs sharing a round: one sweep serves every job, and each job's
/// middle solves consume its slice unchanged.
///
/// # Panics
///
/// Panics if any group's vector length differs from its stack's dimension.
pub fn fused_dots_multi(groups: &[(&StackedLbfgs, &[f32])], dots: &mut AVec) {
    let total: usize = groups.iter().map(|(s, _)| s.total_columns()).sum();
    dots.clear();
    dots.resize(total, 0.0);
    if total == 0 {
        return;
    }
    // Per-row work is the dot length; groups can differ in dim, so weight
    // the spawn gate by the largest (affects the band split only).
    let work_per_row = groups
        .iter()
        .map(|(s, _)| s.dim())
        .max()
        .unwrap_or(1)
        .max(1);
    let starts: Vec<usize> = groups
        .iter()
        .scan(0usize, |acc, (s, _)| {
            let start = *acc;
            *acc += s.total_columns();
            Some(start)
        })
        .collect();
    fuiov_tensor::pool::par_row_bands_weighted(dots, total, 1, work_per_row, |rows, band| {
        for ((stack, v), &start) in groups.iter().zip(&starts) {
            let end = start + stack.total_columns();
            let lo = rows.start.max(start);
            let hi = rows.end.min(end);
            if lo >= hi {
                continue;
            }
            stack.dots_range_into(
                v,
                lo - start..hi - start,
                &mut band[lo - rows.start..hi - rows.start],
            );
        }
    });
}

/// Reusable per-recovery scratch arena: every `d`-length (and `Σ2s`-length)
/// temporary the replay loop needs, allocated once per recovery and
/// recycled across all rounds and clients.
#[derive(Debug, Default)]
pub struct RoundScratch {
    /// `w̄ₜ − wₜ` for the current round. 64-byte aligned ([`AVec`]): the
    /// SIMD inbound sweep streams this vector once per stacked column.
    pub dw_t: AVec,
    /// Fused per-column dots of the stack against `dw_t` (aligned).
    pub dots: AVec,
    /// Concatenated middle-solve solutions, offsets parallel to `dots`.
    pub ps: Vec<f32>,
    /// `2s`-length rhs scratch for the middle solves.
    pub rhs: Vec<f32>,
    /// `2s`-length solution scratch for the middle solves.
    pub p: Vec<f32>,
    /// Row-major `n × d` estimate matrix (one row per remaining client),
    /// 64-byte aligned so every estimate row's SIMD accumulation starts
    /// on a cache-line boundary when `dim % 16 == 0`.
    pub est: AVec,
    /// Decoded stored direction of the client being refreshed.
    pub stored: Vec<f32>,
    /// `est − stored` for the pair being pushed.
    pub dg: Vec<f32>,
    /// `f64` accumulator reused by lr calibration windows.
    pub acc64: Vec<f64>,
}

impl RoundScratch {
    /// An empty arena; buffers grow on first use and are then recycled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the estimate matrix holds `rows × dim` elements (contents
    /// are per-round garbage; every used row is fully overwritten).
    pub fn ensure_est(&mut self, rows: usize, dim: usize) -> &mut [f32] {
        self.est.resize(rows * dim, 0.0);
        &mut self.est[..rows * dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_for(seed: u64, dim: usize, pairs: usize) -> LbfgsApprox {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let dws: Vec<Vec<f32>> = (0..pairs)
            .map(|_| (0..dim).map(|_| next()).collect())
            .collect();
        let dgs: Vec<Vec<f32>> = dws
            .iter()
            .map(|w| {
                w.iter()
                    .enumerate()
                    .map(|(i, x)| x * (1.5 + (i % 3) as f32))
                    .collect()
            })
            .collect();
        LbfgsApprox::new(&dws, &dgs).expect("synthetic pairs are well-conditioned")
    }

    #[test]
    fn stacked_hvp_matches_per_client_bitwise() {
        let dim = 33;
        let approxes: Vec<(ClientId, LbfgsApprox)> = vec![
            (2, approx_for(11, dim, 1)),
            (5, approx_for(22, dim, 2)),
            (9, approx_for(33, dim, 3)),
        ];
        let stacked = StackedLbfgs::build(dim, approxes.iter().map(|(c, a)| (*c, a)));
        assert_eq!(stacked.len(), 3);
        assert_eq!(stacked.total_columns(), 2 * (1 + 2 + 3));
        let v: Vec<f32> = (0..dim)
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    i as f32 * 0.01 - 0.4
                }
            })
            .collect();
        let mut scratch = RoundScratch::new();
        stacked.fused_dots(&v, &mut scratch.dots);
        stacked.solve_middles(
            &scratch.dots,
            &mut scratch.ps,
            &mut scratch.rhs,
            &mut scratch.p,
        );
        for (client, approx) in &approxes {
            let e = stacked.entry_for(*client).expect("stacked");
            let mut batched = vec![0.0f32; dim];
            stacked.write_hvp(e, &scratch.ps, &v, &mut batched);
            let per_client = approx.hvp(&v);
            assert_eq!(
                batched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                per_client.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "client {client} diverged"
            );
        }
        assert_eq!(stacked.entry_for(3), None);
    }

    #[test]
    fn accumulate_adds_exactly_like_axpy() {
        let dim = 10;
        let approx = approx_for(7, dim, 2);
        let stacked = StackedLbfgs::build(dim, [(0 as ClientId, &approx)]);
        let v: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1 - 0.3).collect();
        let mut scratch = RoundScratch::new();
        stacked.fused_dots(&v, &mut scratch.dots);
        stacked.solve_middles(
            &scratch.dots,
            &mut scratch.ps,
            &mut scratch.rhs,
            &mut scratch.p,
        );
        let base: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        let mut batched = base.clone();
        stacked.accumulate_correction(0, &scratch.ps, &v, &mut batched);
        let mut reference = base;
        fuiov_tensor::vector::axpy(1.0, &approx.hvp(&v), &mut reference);
        assert_eq!(
            batched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_stack_is_fine() {
        let stacked = StackedLbfgs::build(4, std::iter::empty());
        assert!(stacked.is_empty());
        assert_eq!(stacked.total_columns(), 0);
        let mut scratch = RoundScratch::new();
        stacked.fused_dots(&[0.0; 4], &mut scratch.dots);
        assert!(scratch.dots.is_empty());
        stacked.solve_middles(
            &scratch.dots,
            &mut scratch.ps,
            &mut scratch.rhs,
            &mut scratch.p,
        );
        assert!(scratch.ps.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_clients() {
        let a = approx_for(1, 4, 1);
        let _ = StackedLbfgs::build(4, [(3 as ClientId, &a), (1 as ClientId, &a)]);
    }

    #[test]
    fn fingerprint_tracks_stack_contents() {
        let dim = 12;
        let a = approx_for(5, dim, 2);
        let b = approx_for(6, dim, 2);
        let one = StackedLbfgs::build(dim, [(1 as ClientId, &a)]);
        let same = StackedLbfgs::build(dim, [(1 as ClientId, &a)]);
        assert_eq!(one.fingerprint(), same.fingerprint());
        let other_factors = StackedLbfgs::build(dim, [(1 as ClientId, &b)]);
        assert_ne!(one.fingerprint(), other_factors.fingerprint());
        let other_client = StackedLbfgs::build(dim, [(2 as ClientId, &a)]);
        assert_ne!(one.fingerprint(), other_client.fingerprint());
        let empty = StackedLbfgs::build(dim, std::iter::empty());
        assert_ne!(one.fingerprint(), empty.fingerprint());
        assert_eq!(one.dim(), dim);
    }

    #[test]
    fn multi_sweep_matches_per_job_fused_dots_bitwise() {
        let dim_a = 33;
        let dim_b = 17; // jobs may disagree on nothing but their windows, but the sweep must not assume equal dims
        let (a1, a2) = (approx_for(11, dim_a, 1), approx_for(22, dim_a, 3));
        let stack_a = StackedLbfgs::build(dim_a, [(2 as ClientId, &a1), (5 as ClientId, &a2)]);
        let b1 = approx_for(9, dim_b, 2);
        let stack_b = StackedLbfgs::build(dim_b, [(4 as ClientId, &b1)]);
        let empty = StackedLbfgs::build(dim_a, std::iter::empty());
        let v_a: Vec<f32> = (0..dim_a)
            .map(|i| {
                if i % 4 == 0 {
                    0.0
                } else {
                    i as f32 * 0.03 - 0.5
                }
            })
            .collect();
        let v_b: Vec<f32> = (0..dim_b).map(|i| 0.2 - i as f32 * 0.01).collect();
        let mut expect_a = AVec::new();
        let mut expect_b = AVec::new();
        stack_a.fused_dots(&v_a, &mut expect_a);
        stack_b.fused_dots(&v_b, &mut expect_b);

        let mut dots = AVec::new();
        fused_dots_multi(
            &[
                (&stack_a, &v_a[..]),
                (&empty, &v_a[..]),
                (&stack_b, &v_b[..]),
            ],
            &mut dots,
        );
        assert_eq!(
            dots.len(),
            stack_a.total_columns() + stack_b.total_columns()
        );
        let (got_a, got_b) = dots.split_at(stack_a.total_columns());
        assert_eq!(
            got_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            got_b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect_b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        // The range primitive itself, at an awkward split point.
        let cols = stack_a.total_columns();
        let mut band = vec![0.0f32; cols];
        let (head, tail) = band.split_at_mut(3);
        stack_a.dots_range_into(&v_a, 0..3, head);
        stack_a.dots_range_into(&v_a, 3..cols, tail);
        assert_eq!(
            band.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        // No groups at all is a no-op.
        fused_dots_multi(&[], &mut dots);
        assert!(dots.is_empty());
    }
}
