//! Registry semantics under the workspace's real worker pool: concurrent
//! increments from `fuiov_tensor::pool` workers must sum deterministically
//! (integer atomics are order-free), and a captured snapshot must survive
//! the JSON-lines wire format bit-for-bit.

use fuiov_obs::{counter, export, histogram, journal, RunReport, Snapshot};

#[test]
fn pool_workers_sum_deterministically() {
    let _g = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let c = counter!("obs_test.pool.increments");
    let h = histogram!("obs_test.pool.values");

    let items: Vec<u64> = (0..1024).collect();
    let expected_sum: u64 = items.iter().sum();

    let mut last: Option<(u64, u64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let before = Snapshot::capture();
        fuiov_tensor::pool::set_threads(threads);
        // Every worker records into the same statics from its own band.
        let _ = fuiov_tensor::pool::par_map(&items, 1, |_, &v| {
            c.inc();
            h.observe(v);
        });
        fuiov_tensor::pool::set_threads(0);
        let delta = Snapshot::capture().delta(&before);
        let got = (
            delta.counter("obs_test.pool.increments"),
            delta.histogram("obs_test.pool.values").unwrap().count,
            delta.histogram("obs_test.pool.values").unwrap().sum,
        );
        assert_eq!(
            got,
            (items.len() as u64, items.len() as u64, expected_sum),
            "threads={threads}: totals must not depend on interleaving"
        );
        if let Some(prev) = last {
            assert_eq!(prev, got, "threads={threads} diverged from previous width");
        }
        last = Some(got);
    }
}

#[test]
fn captured_snapshot_round_trips_through_jsonl() {
    let _g = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    counter!("obs_test.roundtrip.counter").add(17);
    histogram!("obs_test.roundtrip.hist").observe_scaled(1.5);
    histogram!("obs_test.roundtrip.hist").observe_scaled(0.25);
    let snap = Snapshot::capture();
    let wire = export::to_jsonl(&snap);
    let parsed = export::parse_jsonl(&wire).expect("own emission must parse");
    assert_eq!(
        parsed, snap,
        "snapshot must survive the JSON-lines round trip"
    );
    // And the re-emission is byte-stable (canonical ordering).
    assert_eq!(export::to_jsonl(&parsed), wire);
}

#[test]
fn run_report_renders_all_formats() {
    let _g = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    counter!("obs_test.report.touch").inc();
    journal::begin("obs_test.report.span", 1);
    journal::end("obs_test.report.span", 1, 2);
    let report = RunReport::capture();
    assert!(report.to_string().contains("obs_test.report.touch"));
    assert!(report.to_jsonl().contains("obs_test.report.touch"));
    assert!(report.to_prometheus().contains("obs_test_report_touch"));
    assert!(report.journal_len >= 2);
}

#[test]
fn concurrent_first_touch_registers_exactly_once() {
    let _g = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    // Hammer a fresh metric's first touch from many threads: the Treiber
    // push must happen exactly once, so the snapshot sees the full total
    // (a double registration would double-count it).
    let c = counter!("obs_test.race.first_touch");
    crossbeam::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|_| {
                for _ in 0..1000 {
                    c.inc();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        Snapshot::capture().counter("obs_test.race.first_touch"),
        8000
    );
}
