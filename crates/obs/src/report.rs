//! End-of-run report: a metric snapshot plus journal state, printable as
//! one block. Examples and experiment binaries print this after a
//! forget→recover run so "what did this recovery actually do?" has a
//! first-class answer.

use crate::export;
use crate::journal;
use crate::registry::Snapshot;

/// A point-in-time run report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Metric registry state (or a delta window of it).
    pub snapshot: Snapshot,
    /// Events currently in the journal ring.
    pub journal_len: usize,
    /// Events evicted from the ring so far.
    pub journal_dropped: u64,
}

impl RunReport {
    /// Captures the global registry and journal.
    pub fn capture() -> Self {
        RunReport {
            snapshot: Snapshot::capture(),
            journal_len: journal::snapshot().len(),
            journal_dropped: journal::dropped(),
        }
    }

    /// Captures, windowed against an earlier snapshot (counter and
    /// histogram values become the activity since `base`).
    pub fn since(base: &Snapshot) -> Self {
        let mut r = Self::capture();
        r.snapshot = r.snapshot.delta(base);
        r
    }

    /// The metrics as a JSON-lines block (see [`export::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(&self.snapshot)
    }

    /// The metrics in Prometheus text format (see
    /// [`export::to_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        export::to_prometheus(&self.snapshot)
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== run report ==")?;
        if self.snapshot.is_empty() {
            writeln!(f, "(no metrics recorded — is FUIOV_OBS=0?)")?;
        } else {
            write!(f, "{}", export::to_table(&self.snapshot))?;
        }
        write!(
            f,
            "journal: {} event(s) in ring, {} dropped",
            self.journal_len, self.journal_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_prints_metrics_and_journal_line() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        crate::counter!("report.test.rounds").add(3);
        let r = RunReport::capture();
        let text = r.to_string();
        assert!(text.contains("== run report =="));
        assert!(text.contains("report.test.rounds"));
        assert!(text.contains("journal:"));
    }

    #[test]
    fn since_windows_the_counters() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let c = crate::counter!("report.test.windowed");
        c.add(5);
        let base = Snapshot::capture();
        c.add(2);
        let r = RunReport::since(&base);
        assert_eq!(r.snapshot.counter("report.test.windowed"), 2);
    }
}
