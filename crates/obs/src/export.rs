//! Snapshot exporters: human summary table, JSON-lines, Prometheus text.
//!
//! All three render a [`Snapshot`] in deterministic (name-sorted) order.
//! JSON-lines is the machine interchange format and round-trips through
//! [`parse_jsonl`] exactly (`parse_jsonl(to_jsonl(s)) == s`), which the
//! registry tests pin. The writer emits no floats — counts, sums and
//! bucket bounds are integers — so the round-trip needs no tolerance.

use crate::registry::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

/// Renders the snapshot as an aligned two-column summary table.
pub fn to_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, v) in &snap.counters {
        rows.push((name.clone(), v.to_string()));
    }
    for (name, v) in &snap.gauges {
        rows.push((name.clone(), v.to_string()));
    }
    for (name, h) in &snap.histograms {
        let mean = h
            .mean()
            .map_or_else(|| "-".to_string(), |m| format!("{m:.1}"));
        rows.push((
            name.clone(),
            format!("n={} sum={} mean={}", h.count, h.sum, mean),
        ));
    }
    rows.sort();
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        let _ = writeln!(out, "{name:<width$}  {value}");
    }
    out
}

/// Serialises the snapshot as JSON-lines: one object per metric.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":"{}","value":{v}}}"#,
            escape(name)
        );
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":"{}","value":{v}}}"#,
            escape(name)
        );
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(le, n)| format!("[{le},{n}]"))
            .collect();
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":"{}","count":{},"sum":{},"buckets":[{}]}}"#,
            escape(name),
            h.count,
            h.sum,
            buckets.join(",")
        );
    }
    out
}

/// Error from [`parse_jsonl`]: the offending line and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jsonl line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the JSON-lines format emitted by [`to_jsonl`] back into a
/// [`Snapshot`]. Accepts exactly that emission grammar (key order fixed,
/// integer values) — this is a wire-format round-trip, not a general JSON
/// parser.
///
/// # Errors
///
/// [`ParseError`] naming the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Snapshot, ParseError> {
    let mut snap = Snapshot::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| ParseError {
            line: i + 1,
            message: message.to_string(),
        };
        let rest = line
            .strip_prefix(r#"{"type":""#)
            .ok_or_else(|| err("missing type header"))?;
        if let Some(rest) = rest.strip_prefix(r#"counter","name":""#) {
            let (name, value) = parse_name_value(rest).ok_or_else(|| err("bad counter"))?;
            let value = value.parse::<u64>().map_err(|_| err("bad counter value"))?;
            *snap.counters.entry(name).or_insert(0) += value;
        } else if let Some(rest) = rest.strip_prefix(r#"gauge","name":""#) {
            let (name, value) = parse_name_value(rest).ok_or_else(|| err("bad gauge"))?;
            let value = value.parse::<i64>().map_err(|_| err("bad gauge value"))?;
            snap.gauges.insert(name, value);
        } else if let Some(rest) = rest.strip_prefix(r#"histogram","name":""#) {
            let (name, h) = parse_histogram(rest).ok_or_else(|| err("bad histogram"))?;
            snap.histograms.insert(name, h);
        } else {
            return Err(err("unknown metric type"));
        }
    }
    Ok(snap)
}

/// Splits `name","value":<int>}` into the unescaped name and the integer
/// text.
fn parse_name_value(rest: &str) -> Option<(String, &str)> {
    let (name, rest) = split_name(rest)?;
    let value = rest.strip_prefix(r#","value":"#)?.strip_suffix('}')?;
    Some((name, value))
}

/// Splits `name","count":C,"sum":S,"buckets":[[le,n],...]}`.
fn parse_histogram(rest: &str) -> Option<(String, HistogramSnapshot)> {
    let (name, rest) = split_name(rest)?;
    let rest = rest.strip_prefix(r#","count":"#)?;
    let (count, rest) = rest.split_once(r#","sum":"#)?;
    let (sum, rest) = rest.split_once(r#","buckets":["#)?;
    let body = rest.strip_suffix("]}")?;
    let mut buckets = Vec::new();
    if !body.is_empty() {
        for pair in body.split("],[") {
            let pair = pair.trim_start_matches('[').trim_end_matches(']');
            let (le, n) = pair.split_once(',')?;
            buckets.push((le.parse().ok()?, n.parse().ok()?));
        }
    }
    Some((
        name,
        HistogramSnapshot {
            count: count.parse().ok()?,
            sum: sum.parse().ok()?,
            buckets,
        },
    ))
}

/// Consumes an escaped JSON string up to its closing quote, returning the
/// unescaped name and the remainder after the quote.
fn split_name(s: &str) -> Option<(String, &str)> {
    let mut name = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((name, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => name.push('"'),
                '\\' => name.push('\\'),
                _ => return None,
            },
            c => name.push(c),
        }
    }
    None
}

fn escape(name: &str) -> String {
    name.replace('\\', r"\\").replace('"', r#"\""#)
}

/// Renders the snapshot in the Prometheus text exposition format.
/// Metric names are sanitised (`.` and other non-identifier characters
/// become `_`); histograms emit cumulative `_bucket{le="…"}` series plus
/// `_sum` and `_count`.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitise(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitise(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitise(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(le, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
    }
    out
}

fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.count".into(), 42);
        s.counters.insert("b.count".into(), 0);
        s.gauges.insert("c.level".into(), -7);
        s.histograms.insert(
            "d.hist".into(),
            HistogramSnapshot {
                count: 3,
                sum: 1004,
                buckets: vec![(1, 2), (1023, 1)],
            },
        );
        s.histograms
            .insert("e.empty".into(), HistogramSnapshot::default());
        s
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let s = sample();
        assert_eq!(parse_jsonl(&to_jsonl(&s)).unwrap(), s);
    }

    #[test]
    fn jsonl_round_trips_escaped_names() {
        let mut s = Snapshot::default();
        s.counters.insert(r#"weird"name\with.stuff"#.into(), 1);
        assert_eq!(parse_jsonl(&to_jsonl(&s)).unwrap(), s);
    }

    #[test]
    fn jsonl_rejects_garbage_with_line_numbers() {
        // to_jsonl ends with a newline, so the blank line 6 is skipped
        // and the garbage sits on line 7.
        let text = format!("{}\nnot json\n", to_jsonl(&sample()));
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 7);
    }

    #[test]
    fn table_lists_every_metric() {
        let t = to_table(&sample());
        for name in ["a.count", "b.count", "c.level", "d.hist", "e.empty"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("n=3 sum=1004"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let p = to_prometheus(&sample());
        assert!(p.contains("# TYPE d_hist histogram"));
        assert!(p.contains("d_hist_bucket{le=\"1\"} 2"));
        assert!(p.contains("d_hist_bucket{le=\"1023\"} 3"));
        assert!(p.contains("d_hist_bucket{le=\"+Inf\"} 3"));
        assert!(p.contains("d_hist_sum 1004"));
        assert!(p.contains("c_level -7"));
    }
}
