//! Bounded round-event journal.
//!
//! A ring buffer of span events (`Begin`/`End`/`Instant`) with globally
//! monotonic sequence numbers. Replay loops journal each round's begin
//! and end together with small integer payloads (round index, participant
//! count), so a hung or slow recovery can be inspected without attaching
//! a debugger — the tail of the ring says exactly which round and stage
//! the run died in.
//!
//! **Determinism:** events carry *no wall-clock time* unless the
//! non-default `wallclock` feature is on; sequence numbers are the only
//! ordering. Capacity is bounded (`FUIOV_OBS_JOURNAL`, default 4096
//! events; `0` disables), oldest events drop first, and the drop count is
//! reported so truncation is never silent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default ring capacity in events.
pub const DEFAULT_CAPACITY: usize = 4096;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event.
    Instant,
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Globally monotonic sequence number (gaps mean dropped events).
    pub seq: u64,
    /// Static span label, e.g. `"core.recover.round"`.
    pub span: &'static str,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// First payload word (conventionally the round index).
    pub a: u64,
    /// Second payload word (conventionally a count).
    pub b: u64,
    /// Nanoseconds since the first journal touch. `None` unless the
    /// non-default `wallclock` feature is enabled — deterministic paths
    /// never observe time.
    pub nanos: Option<u64>,
}

struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: OnceLock<Mutex<Ring>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        let capacity = std::env::var("FUIOV_OBS_JOURNAL")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        })
    })
}

#[cfg(feature = "wallclock")]
fn now_nanos() -> Option<u64> {
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Some(epoch.elapsed().as_nanos() as u64)
}

#[cfg(not(feature = "wallclock"))]
fn now_nanos() -> Option<u64> {
    None
}

fn record(span: &'static str, kind: EventKind, a: u64, b: u64) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    if ring.capacity == 0 {
        return 0;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    if ring.events.len() == ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(Event {
        seq,
        span,
        kind,
        a,
        b,
        nanos: now_nanos(),
    });
    seq
}

/// Journals a span begin; returns its sequence number (0 when disabled).
pub fn begin(span: &'static str, a: u64) -> u64 {
    record(span, EventKind::Begin, a, 0)
}

/// Journals a span end with a result payload.
pub fn end(span: &'static str, a: u64, b: u64) -> u64 {
    record(span, EventKind::End, a, b)
}

/// Journals a point event.
pub fn instant(span: &'static str, a: u64, b: u64) -> u64 {
    record(span, EventKind::Instant, a, b)
}

/// Copies the current ring contents, oldest first.
pub fn snapshot() -> Vec<Event> {
    let ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.events.iter().cloned().collect()
}

/// Events evicted so far because the ring was full.
pub fn dropped() -> u64 {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .dropped
}

/// The ring capacity in force.
pub fn capacity() -> usize {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .capacity
}

/// Empties the ring (sequence numbers keep rising; tests use the
/// monotone sequence to correlate across clears).
pub fn clear() {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.events.clear();
    ring.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_with_monotonic_seq() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        clear();
        let s0 = begin("test.span", 3);
        let s1 = end("test.span", 3, 8);
        assert!(s1 > s0);
        let events = snapshot();
        let ours: Vec<&Event> = events.iter().filter(|e| e.span == "test.span").collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].kind, EventKind::Begin);
        assert_eq!(ours[1].kind, EventKind::End);
        assert_eq!(ours[1].b, 8);
        assert!(ours[0].seq < ours[1].seq);
        #[cfg(not(feature = "wallclock"))]
        assert!(
            ours.iter().all(|e| e.nanos.is_none()),
            "no wall-clock in deterministic paths"
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        clear();
        let cap = capacity();
        for i in 0..(cap as u64 + 10) {
            instant("test.flood", i, 0);
        }
        let events = snapshot();
        assert!(events.len() <= cap);
        assert!(dropped() >= 10);
        // Oldest dropped first: the surviving window is the tail.
        let floods: Vec<&Event> = events.iter().filter(|e| e.span == "test.flood").collect();
        assert_eq!(floods.last().unwrap().a, cap as u64 + 9);
        clear();
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        clear();
        begin("test.disabled", 0);
        assert!(snapshot().iter().all(|e| e.span != "test.disabled"));
        crate::set_enabled(true);
    }
}
