//! Lock-free static metric registry.
//!
//! Metrics are `static`s declared in place by the [`counter!`],
//! [`gauge!`] and [`histogram!`] macros. Recording is a relaxed atomic
//! add; a metric links itself into one global Treiber stack the first
//! time it is touched, so the registry holds exactly the metrics a run
//! exercised and enumeration never scans dead instruments.
//!
//! Determinism: every accumulator is an integer. Integer atomic addition
//! is associative and commutative, so the totals a [`Snapshot`] reads are
//! a pure function of the *set* of recorded events, independent of thread
//! interleaving — the property the registry tests pin with
//! `fuiov_tensor::pool` workers.
//!
//! [`counter!`]: crate::counter
//! [`gauge!`]: crate::gauge
//! [`histogram!`]: crate::histogram

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};

/// Log2 histogram bucket count: bucket `i` holds values whose bit length
/// is `i` (value 0 lands in bucket 0), the last bucket is a catch-all.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Scale used by [`Histogram::observe_scaled`]: one unit = 1 micro.
pub const MICROS_PER_UNIT: f64 = 1_000_000.0;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Const constructor for use in `static` declarations (prefer the
    /// [`counter!`](crate::counter) macro).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`. A no-op (one relaxed load, one branch) when collection
    /// is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (reads even while disabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Acquire) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            push(AnyMetric::Counter(self));
        }
    }
}

/// A signed last-write-wins level (resident bytes, ring occupancy, …).
///
/// Unlike counters and histograms, concurrent `set` calls race by design;
/// use gauges only from single-threaded control paths when determinism of
/// the exported value matters.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Const constructor for use in `static` declarations (prefer the
    /// [`gauge!`](crate::gauge) macro).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the level.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&'static self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Acquire) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            push(AnyMetric::Gauge(self));
        }
    }
}

/// A log2-bucketed distribution over unsigned integer observations.
///
/// Float quantities (norms, ratios) go through
/// [`Histogram::observe_scaled`], which records micro-units — integers —
/// so concurrent observation stays order-independent (no float atomics,
/// no non-associative sums).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// Const constructor for use in `static` declarations (prefer the
    /// [`histogram!`](crate::histogram) macro).
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a non-negative float observation in micro-units
    /// (`v * 1e6`, saturating; NaN/negative observe 0).
    #[inline]
    pub fn observe_scaled(&'static self, v: f64) {
        self.observe(to_micros(v));
    }

    /// Bucket index of a value: its bit length, capped at the last
    /// bucket. Bucket `i` therefore spans `[2^(i-1), 2^i)` (0 → bucket 0).
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Acquire) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            push(AnyMetric::Histogram(self));
        }
    }

    fn snapshot_value(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Converts a float to saturating micro-units (NaN/negative → 0).
pub fn to_micros(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        return if v == f64::INFINITY { u64::MAX } else { 0 };
    }
    let scaled = v * MICROS_PER_UNIT;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

/// Point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (micro-units for scaled observations).
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One registered metric (type-erased for registry traversal).
#[derive(Clone, Copy)]
enum AnyMetric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Treiber-stack node; leaked once per metric on first registration
/// (bounded by the number of metric declarations in the program).
struct Node {
    metric: AnyMetric,
    next: *const Node,
}

static HEAD: AtomicPtr<Node> = AtomicPtr::new(std::ptr::null_mut());

fn push(metric: AnyMetric) {
    let node = Box::leak(Box::new(Node {
        metric,
        next: std::ptr::null(),
    }));
    let mut head = HEAD.load(Ordering::Acquire);
    loop {
        node.next = head;
        match HEAD.compare_exchange_weak(
            head,
            node as *mut Node,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

fn for_each(mut f: impl FnMut(AnyMetric)) {
    let mut cur = HEAD.load(Ordering::Acquire) as *const Node;
    while !cur.is_null() {
        // SAFETY: nodes are leaked on push and never freed or mutated
        // after the successful CAS that published them.
        let node = unsafe { &*cur };
        f(node.metric);
        cur = node.next;
    }
}

/// Point-in-time copy of every registered metric, keyed by name.
///
/// Two macro call sites may share a name (e.g. the same logical event
/// recorded from two code paths); their values merge — counters and
/// histogram accumulators add, gauges keep the largest magnitude — so
/// exports are deterministic regardless of registration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Captures the current state of the global registry.
    pub fn capture() -> Self {
        let mut snap = Snapshot::default();
        for_each(|m| match m {
            AnyMetric::Counter(c) => {
                *snap.counters.entry(c.name().to_string()).or_insert(0) += c.get();
            }
            AnyMetric::Gauge(g) => {
                let slot = snap.gauges.entry(g.name().to_string()).or_insert(0);
                if g.get().abs() >= slot.abs() {
                    *slot = g.get();
                }
            }
            AnyMetric::Histogram(h) => {
                let v = h.snapshot_value();
                let slot = snap.histograms.entry(h.name().to_string()).or_default();
                slot.count += v.count;
                slot.sum += v.sum;
                let mut merged: BTreeMap<u64, u64> = slot.buckets.iter().copied().collect();
                for (le, n) in v.buckets {
                    *merged.entry(le).or_insert(0) += n;
                }
                slot.buckets = merged.into_iter().collect();
            }
        });
        snap
    }

    /// A counter's total, `0` if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, `0` if never touched.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's state, if touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Monotone difference `self − earlier` for counters and histograms
    /// (saturating, so a registry reset between snapshots cannot
    /// underflow); gauges keep their current level. This is how tests
    /// isolate one run's activity from global, process-wide totals.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let base = earlier.histograms.get(k);
                let count = v.count.saturating_sub(base.map_or(0, |b| b.count));
                let sum = v.sum.saturating_sub(base.map_or(0, |b| b.sum));
                let buckets = v
                    .buckets
                    .iter()
                    .filter_map(|&(le, n)| {
                        let before = base
                            .and_then(|b| b.buckets.iter().find(|(l, _)| *l == le))
                            .map_or(0, |(_, n)| *n);
                        let d = n.saturating_sub(before);
                        (d > 0).then_some((le, d))
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        let _g = crate::test_lock();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_nest() {
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert!(Histogram::bucket_bound(i) > Histogram::bucket_bound(i - 1));
            // Every value in bucket i is ≤ its bound.
            let top = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_index(top), i);
        }
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn to_micros_clamps() {
        let _g = crate::test_lock();
        assert_eq!(to_micros(0.0), 0);
        assert_eq!(to_micros(-1.0), 0);
        assert_eq!(to_micros(f64::NAN), 0);
        assert_eq!(to_micros(1.0), 1_000_000);
        assert_eq!(to_micros(f64::INFINITY), u64::MAX);
        assert_eq!(to_micros(1e300), u64::MAX);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let c = crate::counter!("registry.test.counter_accumulates");
        let before = Snapshot::capture().counter("registry.test.counter_accumulates");
        c.inc();
        c.add(4);
        let after = Snapshot::capture().counter("registry.test.counter_accumulates");
        assert_eq!(after - before, 5);
    }

    #[test]
    fn gauges_set_and_add() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let g = crate::gauge!("registry.test.gauge_levels");
        g.set(10);
        g.add(-3);
        assert_eq!(Snapshot::capture().gauge("registry.test.gauge_levels"), 7);
    }

    #[test]
    fn histogram_mean_and_buckets() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = crate::histogram!("registry.test.hist_mean");
        let before = Snapshot::capture();
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        let snap = Snapshot::capture().delta(&before);
        let hs = snap.histogram("registry.test.hist_mean").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 1004);
        assert_eq!(hs.mean(), Some(1004.0 / 3.0));
        assert_eq!(hs.buckets.iter().map(|(_, n)| n).sum::<u64>(), 3);
    }

    #[test]
    fn delta_isolates_a_window() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let c = crate::counter!("registry.test.delta_window");
        c.add(7);
        let base = Snapshot::capture();
        c.add(2);
        let d = Snapshot::capture().delta(&base);
        assert_eq!(d.counter("registry.test.delta_window"), 2);
    }
}
