//! # fuiov-obs — deterministic observability for the unlearning stack
//!
//! The paper's argument is quantitative (recovery cost vs. retraining,
//! storage saved by sign-only directions, clip-threshold behaviour), yet a
//! replay loop is opaque while it runs. This crate makes a run *visible*
//! without making it *different*:
//!
//! - [`registry`] — a lock-free static registry of atomic [`Counter`]s,
//!   [`Gauge`]s and [`Histogram`]s, declared in place with the
//!   [`counter!`]/[`gauge!`]/[`histogram!`] macros and exported as a human
//!   summary table, JSON-lines, or Prometheus text ([`export`]).
//! - [`journal`] — a bounded ring buffer of round events (span begin/end
//!   with monotonic sequence numbers). **No wall-clock in deterministic
//!   paths**: timestamps exist only behind the non-default `wallclock`
//!   feature, so golden traces can never drift.
//! - [`RunReport`] — an end-of-run snapshot the examples and experiment
//!   binaries print.
//!
//! ## Determinism contract
//!
//! Instrumentation is *observational*: no counter, gauge, histogram or
//! journal event may feed back into model arithmetic, iteration order, or
//! any recorded byte. Histogram sums are integer micro-units precisely so
//! that concurrent observation is associative — the same set of events
//! produces the same totals under any thread interleaving. The golden
//! traces and replay fingerprints are byte-identical with observability
//! compiled in, enabled, or disabled (`fuiov-testkit` pins this).
//!
//! ## Knobs
//!
//! | Knob | Effect |
//! |------|--------|
//! | `FUIOV_OBS` | `0`/`false`/`off` disables collection at runtime (default: on) |
//! | `FUIOV_OBS_JOURNAL` | journal capacity in events (default 4096; `0` disables the journal) |
//! | feature `enabled` | compile collection in at all (default feature) |
//! | feature `wallclock` | attach nanosecond timestamps to journal events (non-default) |
//!
//! ## Example
//!
//! ```
//! use fuiov_obs::{counter, histogram, RunReport};
//!
//! counter!("demo.rounds").inc();
//! histogram!("demo.update_norm_micros").observe_scaled(0.25);
//! let report = RunReport::capture();
//! assert!(report.snapshot.counter("demo.rounds") >= 1);
//! println!("{report}");
//! ```

pub mod export;
pub mod journal;
pub mod registry;
mod report;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Snapshot};
pub use report::RunReport;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state runtime switch: 0 = unresolved, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether collection is active: the `enabled` feature is compiled in and
/// the `FUIOV_OBS` environment variable (read once, overridable with
/// [`set_enabled`]) does not turn it off.
///
/// One relaxed atomic load on the hot path — cheap enough to gate every
/// recording call, and instrumentation sites hoist it out of inner loops
/// when the extra observation itself costs something (e.g. clip norms).
#[inline]
pub fn enabled() -> bool {
    if !cfg!(feature = "enabled") {
        return false;
    }
    match ENABLED.load(Ordering::Relaxed) {
        0 => resolve_enabled(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let on = match std::env::var("FUIOV_OBS") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    };
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Overrides the runtime switch (tests use this to compare obs-on and
/// obs-off behaviour within one process). Compiled-out builds (`enabled`
/// feature off) stay off regardless.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Declares (statically, in place) and returns a `&'static` [`Counter`].
///
/// The metric registers itself in the global registry on first touch;
/// until then it costs one static and nothing else.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static METRIC: $crate::registry::Counter = $crate::registry::Counter::new($name);
        &METRIC
    }};
}

/// Declares (statically, in place) and returns a `&'static` [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static METRIC: $crate::registry::Gauge = $crate::registry::Gauge::new($name);
        &METRIC
    }};
}

/// Declares (statically, in place) and returns a `&'static` [`Histogram`]
/// with log2 buckets.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static METRIC: $crate::registry::Histogram = $crate::registry::Histogram::new($name);
        &METRIC
    }};
}

/// Serialises tests that toggle the global switch or assert on global
/// registry/journal state. Not part of the public API.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        let _g = test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_lock();
        set_enabled(false);
        let c = counter!("lib.disabled_probe");
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
